// POP efficiency model on synthetic traces with closed-form factors.
#include "trace/analysis.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace {

using fx::mpi::CommOpKind;
using fx::trace::analyze_efficiency;
using fx::trace::ComputeEvent;
using fx::trace::CommOpEvent;
using fx::trace::PhaseKind;
using fx::trace::Tracer;

constexpr double kFreq = 1.0;  // 1 GHz: 1e9 cycles per second

ComputeEvent compute(int rank, double t0, double t1, double instr,
                     PhaseKind phase = PhaseKind::FftXy) {
  return ComputeEvent{rank, 0, phase, 0, t0, t1, instr};
}

TEST(Analysis, SingleRowPerfectRun) {
  Tracer tr(1);
  tr.record_compute(compute(0, 0.0, 2.0, 2.0e9));
  const auto s = analyze_efficiency(tr, kFreq);
  EXPECT_EQ(s.rows, 1);
  EXPECT_DOUBLE_EQ(s.runtime, 2.0);
  EXPECT_DOUBLE_EQ(s.total_compute, 2.0);
  EXPECT_DOUBLE_EQ(s.load_balance, 1.0);
  EXPECT_DOUBLE_EQ(s.comm_efficiency, 1.0);
  EXPECT_DOUBLE_EQ(s.parallel_efficiency, 1.0);
  EXPECT_DOUBLE_EQ(s.avg_ipc, 1.0);  // 2e9 instructions / 2 s / 1 GHz
}

TEST(Analysis, LoadBalanceAndCommEfficiencyClosedForm) {
  // Two rows: compute 2 s and 1 s inside a 4 s run.
  Tracer tr(2);
  tr.record_compute(compute(0, 0.0, 2.0, 1.0e9));
  tr.record_compute(compute(1, 0.0, 1.0, 0.5e9));
  tr.record_comm(CommOpEvent{0, 0, CommOpKind::Alltoall, 7, 2, 0, 100, 2.0,
                             4.0});
  tr.record_comm(CommOpEvent{1, 0, CommOpKind::Alltoall, 7, 2, 0, 100, 1.0,
                             4.0});
  const auto s = analyze_efficiency(tr, kFreq);
  EXPECT_EQ(s.rows, 2);
  EXPECT_DOUBLE_EQ(s.runtime, 4.0);
  EXPECT_DOUBLE_EQ(s.avg_compute, 1.5);
  EXPECT_DOUBLE_EQ(s.max_compute, 2.0);
  EXPECT_DOUBLE_EQ(s.load_balance, 0.75);
  EXPECT_DOUBLE_EQ(s.comm_efficiency, 0.5);
  EXPECT_DOUBLE_EQ(s.parallel_efficiency, 0.375);
  // The collective instance: last arrival at t=2 -> rank0 transfer = 2 s,
  // rank1 sync = 1 s + transfer 2 s.  avg transfer = 2 -> T_ideal = 2.
  EXPECT_DOUBLE_EQ(s.transfer_efficiency, 0.5);
  EXPECT_DOUBLE_EQ(s.sync_efficiency, 1.0);
}

TEST(Analysis, SyncDominatedCollective) {
  // Rank 1 arrives late; transfer itself is instantaneous.
  Tracer tr(2);
  tr.record_compute(compute(0, 0.0, 1.0, 1e9));
  tr.record_compute(compute(1, 0.0, 3.0, 3e9));
  tr.record_comm(CommOpEvent{0, 0, CommOpKind::Allreduce, 3, 2, 0, 8, 1.0,
                             3.0});
  tr.record_comm(CommOpEvent{1, 0, CommOpKind::Allreduce, 3, 2, 0, 8, 3.0,
                             3.0});
  const auto s = analyze_efficiency(tr, kFreq);
  // Transfer part (after last arrival at t=3) is zero.
  EXPECT_DOUBLE_EQ(s.transfer_efficiency, 1.0);
  EXPECT_DOUBLE_EQ(s.comm_efficiency, 1.0);  // max compute 3 == runtime 3
  EXPECT_DOUBLE_EQ(s.load_balance, 2.0 / 3.0);
}

TEST(Analysis, TransferSyncSplitClosedForm) {
  // Two ranks, 10 s run, 6 s compute each.  One collective ends at t=10;
  // rank 0 enters at t=6, rank 1 at t=8.  Last entry t=8 splits each wait
  // into sync (before) and transfer (after): transfer is 2 s on both rows,
  // so avg transfer = 2 -> T_ideal = max(6, 10-2) = 8.
  //   comm eff     = max_compute / T  = 6/10 = 0.6
  //   transfer eff = T_ideal / T      = 8/10 = 0.8
  //   sync eff     = comm / transfer  = 0.75
  Tracer tr(2);
  tr.record_compute(compute(0, 0.0, 6.0, 6.0e9));
  tr.record_compute(compute(1, 0.0, 6.0, 6.0e9));
  tr.record_comm(CommOpEvent{0, 0, CommOpKind::Alltoallv, 5, 2, 0, 100, 6.0,
                             10.0});
  tr.record_comm(CommOpEvent{1, 0, CommOpKind::Alltoallv, 5, 2, 0, 100, 8.0,
                             10.0});
  const auto s = analyze_efficiency(tr, kFreq);
  EXPECT_DOUBLE_EQ(s.runtime, 10.0);
  EXPECT_DOUBLE_EQ(s.load_balance, 1.0);
  EXPECT_DOUBLE_EQ(s.comm_efficiency, 0.6);
  EXPECT_DOUBLE_EQ(s.transfer_efficiency, 0.8);
  EXPECT_DOUBLE_EQ(s.sync_efficiency, 0.75);
  EXPECT_DOUBLE_EQ(s.parallel_efficiency, 0.6);
}

TEST(Analysis, PointToPointIsPureTransfer) {
  // A Send/Recv pair has no last-arrival semantics: its whole duration is
  // transfer.  One rank computes 3 s then spends 1 s in a Recv inside a
  // 4 s run: transfer eff = max(3, 4-1)/4 = 0.75, sync eff = 1.
  Tracer tr(1);
  tr.record_compute(compute(0, 0.0, 3.0, 3.0e9));
  tr.record_comm(CommOpEvent{0, 0, CommOpKind::Recv, 2, 2, 1, 64, 3.0, 4.0});
  const auto s = analyze_efficiency(tr, kFreq);
  EXPECT_DOUBLE_EQ(s.comm_efficiency, 0.75);
  EXPECT_DOUBLE_EQ(s.transfer_efficiency, 0.75);
  EXPECT_DOUBLE_EQ(s.sync_efficiency, 1.0);
}

TEST(Analysis, AbftSpansAreOverheadNotCompute) {
  // Both ranks do 2 s of useful work; rank 0 additionally runs 2 s of ABFT
  // checks.  Counting the checks as compute would report LB = (3/4)... the
  // estimator must instead see perfectly balanced useful work.
  Tracer tr(2);
  tr.record_compute(compute(0, 0.0, 2.0, 2.0e9));
  tr.record_compute(compute(0, 2.0, 4.0, 1.0e9, PhaseKind::Abft));
  tr.record_compute(compute(1, 0.0, 2.0, 2.0e9));
  const auto s = analyze_efficiency(tr, kFreq);
  EXPECT_DOUBLE_EQ(s.total_compute, 4.0);
  EXPECT_DOUBLE_EQ(s.load_balance, 1.0);
  // ABFT instructions are excluded too, so instruction scalability and
  // IPC stay comparable across ABFT on/off runs.
  EXPECT_DOUBLE_EQ(s.total_instructions, 4.0e9);
  EXPECT_DOUBLE_EQ(s.avg_ipc, 1.0);
}

TEST(Analysis, AbftOnlyRowStillCounts) {
  // A stream that ran nothing but integrity checks is still a stream: its
  // zero compute must drag the load balance down, not vanish.
  Tracer tr(2);
  tr.record_compute(compute(0, 0.0, 2.0, 2.0e9));
  tr.record_compute(compute(1, 0.0, 2.0, 1.0e9, PhaseKind::Abft));
  const auto s = analyze_efficiency(tr, kFreq);
  EXPECT_EQ(s.rows, 2);
  EXPECT_DOUBLE_EQ(s.load_balance, 0.5);
}

TEST(Analysis, RowsIncludeThreads) {
  Tracer tr(1);
  tr.record_compute(ComputeEvent{0, 0, PhaseKind::FftZ, 0, 0.0, 1.0, 1e9});
  tr.record_compute(ComputeEvent{0, 1, PhaseKind::FftZ, 0, 0.0, 1.0, 1e9});
  tr.record_compute(ComputeEvent{0, 2, PhaseKind::FftZ, 0, 0.0, 0.5, 5e8});
  const auto s = analyze_efficiency(tr, kFreq);
  EXPECT_EQ(s.rows, 3);
  EXPECT_DOUBLE_EQ(s.load_balance, (2.5 / 3.0) / 1.0);
}

TEST(Analysis, ScalabilityFactors) {
  fx::trace::EfficiencySummary ref;
  ref.total_instructions = 100.0;
  ref.total_compute = 10.0;
  ref.avg_ipc = 1.0;
  ref.parallel_efficiency = 1.0;

  fx::trace::EfficiencySummary run;
  run.total_instructions = 110.0;  // 10% replication
  run.total_compute = 20.0;
  run.avg_ipc = 0.55;
  run.parallel_efficiency = 0.9;

  const auto f = fx::trace::scale_against(ref, run);
  EXPECT_NEAR(f.instruction_scalability, 100.0 / 110.0, 1e-12);
  EXPECT_NEAR(f.ipc_scalability, 0.55, 1e-12);
  EXPECT_NEAR(f.computation_scalability, 0.5, 1e-12);
  EXPECT_NEAR(f.global_efficiency, 0.45, 1e-12);
  // Consistency: comp scal == ipc scal * ins scal (same frequency).
  EXPECT_NEAR(f.computation_scalability,
              f.ipc_scalability * f.instruction_scalability, 1e-12);
}

TEST(Analysis, MeanPhaseIpc) {
  Tracer tr(1);
  tr.record_compute(compute(0, 0.0, 1.0, 0.8e9, PhaseKind::FftXy));
  tr.record_compute(compute(0, 1.0, 3.0, 1.2e9, PhaseKind::FftXy));
  tr.record_compute(compute(0, 3.0, 4.0, 9.0e9, PhaseKind::FftZ));
  EXPECT_NEAR(fx::trace::mean_phase_ipc(tr, PhaseKind::FftXy, kFreq),
              2.0 / 3.0, 1e-12);
  EXPECT_NEAR(fx::trace::mean_phase_ipc(tr, PhaseKind::FftZ, kFreq), 9.0,
              1e-12);
  EXPECT_DOUBLE_EQ(fx::trace::mean_phase_ipc(tr, PhaseKind::Vofr, kFreq), 0.0);
}

TEST(Analysis, EmptyTraceIsHarmless) {
  Tracer tr(4);
  const auto s = analyze_efficiency(tr, kFreq);
  EXPECT_EQ(s.rows, 0);
  EXPECT_DOUBLE_EQ(s.runtime, 0.0);
}

TEST(Analysis, NormalizeTimeShiftsToZero) {
  Tracer tr(1);
  tr.record_compute(compute(0, 5.0, 6.0, 1.0));
  tr.record_comm(CommOpEvent{0, 0, CommOpKind::Barrier, 0, 1, 0, 0, 6.0, 7.0});
  tr.normalize_time();
  EXPECT_DOUBLE_EQ(tr.t_min(), 0.0);
  EXPECT_DOUBLE_EQ(tr.compute_events()[0].t_begin, 0.0);
  EXPECT_DOUBLE_EQ(tr.comm_events()[0].t_end, 2.0);
}

TEST(Analysis, RejectsNonPositiveFrequency) {
  Tracer tr(1);
  EXPECT_THROW(analyze_efficiency(tr, 0.0), fx::core::Error);
}

TEST(PhaseCost, ScalingProperties) {
  using fx::trace::copy_cost;
  using fx::trace::fft_cost;
  // FFT cost is superlinear in points through the log factor.
  const auto a = fft_cost(1024, 1024);
  const auto b = fft_cost(2048, 2048);
  EXPECT_GT(b.instructions, 2.0 * a.instructions);
  EXPECT_DOUBLE_EQ(fft_cost(0, 64).instructions, 0.0);
  EXPECT_DOUBLE_EQ(fft_cost(10, 1).instructions, 0.0);
  // Copy phases are bandwidth heavy: bytes/instruction ratio ~8.
  const auto c = copy_cost(1000);
  EXPECT_NEAR(c.bytes / c.instructions, 8.0, 1e-12);
  // FFT phases are compute heavy: much lower bytes/instruction.
  EXPECT_LT(a.bytes / a.instructions, 3.0);
}

}  // namespace
