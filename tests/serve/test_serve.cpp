// Serve frontend: admission control, fairness, degradation ladder,
// deadline cancellation, and shrink-and-continue under rank death.
#include <gtest/gtest.h>

#include <algorithm>
#include <complex>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/metrics.hpp"
#include "fftx/reference.hpp"
#include "pw/lattice.hpp"
#include "serve/frontend.hpp"
#include "simmpi/runtime.hpp"

namespace {

using fx::fft::cplx;
using fx::mpi::Comm;
using fx::mpi::CommOpKind;
using fx::mpi::RunOptions;
using fx::mpi::Runtime;
using fx::mpi::WireFormat;
using fx::serve::Frontend;
using fx::serve::Overloaded;
using fx::serve::Request;
using fx::serve::Response;
using fx::serve::ServeConfig;
using fx::serve::ShedReason;
using fx::serve::Status;
using fx::serve::Ticket;

constexpr int kProc = 4;

RunOptions quiet_options() {
  RunOptions opts;
  opts.watchdog.window_ms = 60000.0;
  return opts;
}

/// Deterministic execution guts for tests: blocking staged exchange (the
/// path the fault plans target), short repair backoffs.
ServeConfig test_config() {
  ServeConfig cfg;
  cfg.pipeline.fused_exchange = false;
  cfg.pipeline.overlap_exchange = false;
  cfg.recovery.enabled = true;
  cfg.recovery.checkpoint_bands = 2;
  cfg.recovery.retry.base_delay_ms = 0.1;
  cfg.idle_poll_ms = 1.0;
  return cfg;
}

/// Runs `client` against a serving world and returns after both finished.
/// The client must call fe.request_stop() when done submitting.
void run_service(Frontend& fe, const RunOptions& opts, int nranks,
                 const std::function<void()>& client) {
  std::thread client_thread(client);
  Runtime::run(nranks, opts, [&](Comm& world) { fe.serve(world); });
  client_thread.join();
  fe.fail_pending("test: world terminated");
}

// --- Pure ladder functions -------------------------------------------------

TEST(ServeLadder, ChooseLevelFollowsPressureAndShrink) {
  EXPECT_EQ(fx::serve::choose_degrade_level(0.0, false, 0.75), 0);
  EXPECT_EQ(fx::serve::choose_degrade_level(0.74, false, 0.75), 0);
  EXPECT_EQ(fx::serve::choose_degrade_level(0.75, false, 0.75), 1);
  EXPECT_EQ(fx::serve::choose_degrade_level(0.90, false, 0.75), 2);
  EXPECT_EQ(fx::serve::choose_degrade_level(1.0, false, 0.75), 2);
  EXPECT_EQ(fx::serve::choose_degrade_level(0.0, true, 0.75), 1);
  EXPECT_EQ(fx::serve::choose_degrade_level(1.0, true, 0.75), 3);
  // The ladder tops out at 3 even under maximal pressure and shrink: the
  // stream-depth rung rides L2, it does not add a level of its own.
  EXPECT_EQ(fx::serve::choose_degrade_level(1.0, true, 0.0), 3);
}

TEST(ServeLadder, ApplyLevelStepsWireChunksStreamDepthCheckpoint) {
  const auto l0 = fx::serve::apply_degrade_level(0, WireFormat::Fp64);
  EXPECT_EQ(l0.wire, WireFormat::Fp64);
  EXPECT_EQ(l0.overlap_chunks, 0);
  EXPECT_EQ(l0.checkpoint_bands, -1);
  EXPECT_EQ(l0.stream_bands, 0);

  const auto l1 = fx::serve::apply_degrade_level(1, WireFormat::Fp64);
  EXPECT_EQ(l1.wire, WireFormat::Fp32);
  EXPECT_EQ(l1.overlap_chunks, 0);
  EXPECT_EQ(l1.stream_bands, 0);  // streaming depth survives L1

  // L2 sheds the extra in-flight band buffers along with the chunking.
  const auto l2 = fx::serve::apply_degrade_level(2, WireFormat::Fp64);
  EXPECT_EQ(l2.wire, WireFormat::Fp32);
  EXPECT_EQ(l2.overlap_chunks, 1);
  EXPECT_EQ(l2.stream_bands, 1);
  EXPECT_EQ(l2.checkpoint_bands, -1);

  const auto l3 = fx::serve::apply_degrade_level(3, WireFormat::Fp64);
  EXPECT_EQ(l3.checkpoint_bands, 0);
  EXPECT_EQ(l3.stream_bands, 1);

  // An already-narrow request does not widen or re-narrow.
  const auto n1 = fx::serve::apply_degrade_level(1, WireFormat::Fp32);
  EXPECT_EQ(n1.wire, WireFormat::Fp32);
}

// --- Admission control (no world needed) -----------------------------------

TEST(ServeAdmission, QueueBoundSheds) {
  ServeConfig cfg = test_config();
  cfg.queue_depth = 2;
  Frontend fe(cfg);
  Ticket a = fe.submit(Request{});
  Ticket b = fe.submit(Request{});
  try {
    fe.submit(Request{});
    FAIL() << "third submit should shed";
  } catch (const Overloaded& e) {
    EXPECT_EQ(e.reason(), ShedReason::QueueFull);
  }
  // Another tenant's queue is independent.
  Request other;
  other.tenant = "second";
  Ticket c = fe.submit(other);
  EXPECT_TRUE(a.valid() && b.valid() && c.valid());
  EXPECT_EQ(fe.fail_pending("test teardown"), 3);
  EXPECT_EQ(a.wait().status, Status::Failed);
}

TEST(ServeAdmission, TokenBucketRateLimits) {
  ServeConfig cfg = test_config();
  cfg.rate = 1e-3;  // effectively no refill within the test
  cfg.burst = 2.0;
  Frontend fe(cfg);
  (void)fe.submit(Request{});
  (void)fe.submit(Request{});
  try {
    fe.submit(Request{});
    FAIL() << "bucket should be empty";
  } catch (const Overloaded& e) {
    EXPECT_EQ(e.reason(), ShedReason::RateLimited);
  }
  fe.fail_pending("test teardown");
}

TEST(ServeAdmission, StopShedsNewSubmissions) {
  Frontend fe(test_config());
  fe.request_stop();
  try {
    fe.submit(Request{});
    FAIL() << "submit after stop should shed";
  } catch (const Overloaded& e) {
    EXPECT_EQ(e.reason(), ShedReason::ShuttingDown);
  }
}

// --- End-to-end completion and coalescing ----------------------------------

TEST(ServeEndToEnd, MixedTenantsCompleteWithCorrectSlices) {
  ServeConfig cfg = test_config();
  Frontend fe(cfg);
  // Submit before the world starts serving so the first scheduling pass
  // sees all three requests -- coalescing is then deterministic.
  std::vector<Ticket> tickets;
  for (int i = 0; i < 3; ++i) {
    Request r;
    r.tenant = i % 2 == 0 ? "alice" : "bob";
    r.num_bands = 2 + i;  // 2, 3, 4
    tickets.push_back(fe.submit(r));
  }
  run_service(fe, quiet_options(), kProc, [&] {
    for (auto& t : tickets) {
      while (!t.done()) std::this_thread::yield();
    }
    fe.request_stop();
  });

  const fx::fftx::Descriptor oracle(fx::pw::Cell{8.0}, 8.0, kProc, 1);
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    Response r = tickets[i].wait();
    ASSERT_EQ(r.status, Status::Completed) << "request " << i << ": "
                                           << r.detail;
    ASSERT_EQ(static_cast<int>(r.bands.size()), 2 + static_cast<int>(i));
    for (std::size_t b = 0; b < r.bands.size(); ++b) {
      const auto want = fx::fftx::reference_band_output(
          oracle, r.assigned_first_band + static_cast<int>(b), true);
      ASSERT_EQ(r.bands[b].size(), want.size());
      double err = 0.0;
      for (std::size_t k = 0; k < want.size(); ++k) {
        err = std::max(err, std::abs(r.bands[b][k] - want[k]));
      }
      EXPECT_LT(err, 1e-12) << "request " << i << " band " << b;
    }
  }

  // Coalescing engaged: 3 requests (9 carried bands <= 32) in one group.
  const auto log = fe.execution_log();
  int members = 0;
  for (const auto& rec : log) members += static_cast<int>(rec.tenants.size());
  EXPECT_EQ(members, 3);
  EXPECT_EQ(log.size(), 1u) << "compatible requests should share executions";
}

TEST(ServeEndToEnd, R2cRequestsPackPairsWithoutStraddling) {
  ServeConfig cfg = test_config();
  Frontend fe(cfg);
  Request r;
  r.real_bands = true;
  r.num_bands = 3;  // odd: pads to 2 carried pairs
  Ticket odd = fe.submit(r);
  r.num_bands = 4;
  Ticket even = fe.submit(r);
  run_service(fe, quiet_options(), kProc, [&] {
    while (!odd.done() || !even.done()) std::this_thread::yield();
    fe.request_stop();
  });

  // Both requests coalesce into one group; the oracle's generation context
  // is the group's (padded, even) band total.
  const auto log = fe.execution_log();
  ASSERT_EQ(log.size(), 1u);
  const int group_bands = 2 * log[0].carried_bands;

  const fx::fftx::Descriptor oracle(fx::pw::Cell{8.0}, 8.0, kProc, 1);
  for (Response r : {odd.wait(), even.wait()}) {
    ASSERT_EQ(r.status, Status::Completed) << r.detail;
    EXPECT_EQ(r.assigned_first_band % 2, 0)
        << "r2c slices must start on a pair boundary";
    ASSERT_EQ(r.bands.size(), 2u);  // both carry two packed pairs
    for (std::size_t p = 0; p < r.bands.size(); ++p) {
      const int pair = r.assigned_first_band / 2 + static_cast<int>(p);
      const auto want = fx::fftx::reference_packed_band_output(
          oracle, pair, group_bands, true);
      ASSERT_EQ(r.bands[p].size(), want.size());
      double err = 0.0;
      for (std::size_t k = 0; k < want.size(); ++k) {
        err = std::max(err, std::abs(r.bands[p][k] - want[k]));
      }
      EXPECT_LT(err, 1e-12) << "pair " << p;
    }
  }
}

// --- Deadlines --------------------------------------------------------------

TEST(ServeDeadline, CancelledCleanlyAndWorldStaysUsable) {
  ServeConfig cfg = test_config();
  Frontend fe(cfg);
  Ticket doomed, healthy;
  run_service(fe, quiet_options(), kProc, [&] {
    Request r;
    r.deadline_s = 1e-6;  // expired before it can possibly dispatch
    doomed = fe.submit(r);
    healthy = fe.submit(Request{});  // no deadline: must not coalesce in
    while (!doomed.done() || !healthy.done()) std::this_thread::yield();
    fe.request_stop();
  });

  Response d = doomed.wait();
  EXPECT_EQ(d.status, Status::DeadlineCancelled);
  EXPECT_TRUE(d.bands.empty()) << "partial work must be discarded";

  // The acceptance criterion: the same world served the next request.
  Response h = healthy.wait();
  EXPECT_EQ(h.status, Status::Completed) << h.detail;
  EXPECT_FALSE(h.bands.empty());
}

// --- Fairness ---------------------------------------------------------------

TEST(ServeFairness, LightTenantIsNotStarvedByAFlood) {
  ServeConfig cfg = test_config();
  cfg.queue_depth = 64;
  cfg.coalesce_bands = 4;  // flood cannot collapse into one group
  cfg.starvation_ms = 200.0;
  Frontend fe(cfg);
  // heavy floods with one problem size; light wants a different one
  // (different cutoff -> never coalesces with the flood).  All queued
  // before serving starts, so scheduling order is deterministic.
  std::vector<Ticket> tickets;
  for (int i = 0; i < 12; ++i) {
    Request r;
    r.tenant = "heavy";
    r.num_bands = 4;
    tickets.push_back(fe.submit(r));
  }
  Request lr;
  lr.tenant = "light";
  lr.ecut_ry = 6.0;
  lr.num_bands = 2;
  tickets.push_back(fe.submit(lr));
  run_service(fe, quiet_options(), kProc, [&] {
    for (auto& t : tickets) {
      while (!t.done()) std::this_thread::yield();
    }
    fe.request_stop();
  });

  const auto log = fe.execution_log();
  std::size_t light_at = log.size();
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (std::find(log[i].tenants.begin(), log[i].tenants.end(), "light") !=
        log[i].tenants.end()) {
      light_at = i;
      break;
    }
  }
  ASSERT_LT(light_at, log.size()) << "light tenant never ran";
  // Round-robin bound: the light tenant runs within a couple of rotations,
  // not after the entire flood drains.
  EXPECT_LE(light_at, 3u);
}

// --- Rank death: shrink-and-continue, circuit breaker ----------------------

TEST(ServeResilience, RankKillShrinksWorldAndServiceContinues) {
  ServeConfig cfg = test_config();
  Frontend fe(cfg);
  RunOptions opts = quiet_options();
  opts.faults.kill_rank = 1;
  opts.faults.kill_op = 9;  // mid-execution, inside the band exchanges
  opts.faults.only_kind = static_cast<int>(CommOpKind::Alltoallv);

  Ticket first, second;
  run_service(fe, opts, kProc, [&] {
    Request r;
    r.num_bands = 8;
    first = fe.submit(r);
    while (!first.done()) std::this_thread::yield();
    second = fe.submit(Request{});
    while (!second.done()) std::this_thread::yield();
    fe.request_stop();
  });

  // The driver repairs the first group in place (replay on the shrunk
  // world), so the request still completes; the serve world then shrinks
  // and later requests run at degraded capacity, declared on the response.
  Response r1 = first.wait();
  EXPECT_TRUE(r1.status == Status::Completed ||
              r1.status == Status::CompletedDegraded)
      << r1.detail;
  EXPECT_FALSE(r1.bands.empty());
  Response r2 = second.wait();
  EXPECT_TRUE(r2.status == Status::Completed ||
              r2.status == Status::CompletedDegraded)
      << r2.detail;
  EXPECT_FALSE(r2.bands.empty());
}

TEST(ServeResilience, RepeatedFailuresOpenTheBreaker) {
  ServeConfig cfg = test_config();
  cfg.recovery.enabled = false;  // kill becomes a terminal group failure
  cfg.breaker_strikes = 1;
  cfg.breaker_cooldown_s = 60.0;  // stays open for the rest of the test
  Frontend fe(cfg);
  RunOptions opts = quiet_options();
  opts.faults.kill_rank = 1;
  opts.faults.kill_op = 5;
  opts.faults.only_kind = static_cast<int>(CommOpKind::Alltoallv);

  Ticket doomed;
  bool quarantined = false;
  run_service(fe, opts, kProc, [&] {
    Request r;
    r.tenant = "flaky";
    r.num_bands = 8;
    doomed = fe.submit(r);
    while (!doomed.done()) std::this_thread::yield();
    try {
      (void)fe.submit(r);
    } catch (const Overloaded& e) {
      quarantined = e.reason() == ShedReason::Quarantined;
    }
    fe.request_stop();
  });

  EXPECT_EQ(doomed.wait().status, Status::Failed);
  EXPECT_TRUE(quarantined)
      << "one strike with breaker_strikes=1 must quarantine the tenant";
}

// --- Config -----------------------------------------------------------------

TEST(ServeConfigEnv, RejectsGarbage) {
  setenv("FFTX_SERVE_QUEUE", "lots", 1);
  EXPECT_THROW(ServeConfig::from_env(), fx::core::Error);
  setenv("FFTX_SERVE_QUEUE", "0", 1);
  EXPECT_THROW(ServeConfig::from_env(), fx::core::Error);
  unsetenv("FFTX_SERVE_QUEUE");
  setenv("FFTX_SERVE_DEGRADE_WATERMARK", "1.5", 1);
  EXPECT_THROW(ServeConfig::from_env(), fx::core::Error);
  unsetenv("FFTX_SERVE_DEGRADE_WATERMARK");
  const ServeConfig cfg = ServeConfig::from_env();
  EXPECT_EQ(cfg.queue_depth, 64);
}

}  // namespace
