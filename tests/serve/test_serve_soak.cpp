// Overload soak: several tenants submit well past sustainable throughput
// into small bounded queues while faults (rank kill + payload corruption)
// are live.  The acceptance criteria from the service design:
//
//   - queue depth stays bounded (admission control sheds the excess),
//   - the world never hangs or deadlocks (watchdog-guarded),
//   - every admitted request reaches EXACTLY one terminal state
//     (double-fulfillment is an FX_CHECK abort inside the frontend),
//   - deadline-cancelled requests leave the communicator usable,
//   - shedding and degradation demonstrably engage.
//
// The rank count honors FFTX_SERVE_SOAK_RANKS (CI sweeps 2/4/8) and the
// fault plan honors a preset FFTX_FAULT_* environment; when the
// environment injects nothing, a built-in kill + corruption plan keeps the
// soak chaotic by default.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/env.hpp"
#include "core/metrics.hpp"
#include "core/timer.hpp"
#include "serve/frontend.hpp"
#include "simmpi/runtime.hpp"

namespace {

using fx::mpi::Comm;
using fx::mpi::CommOpKind;
using fx::mpi::RunOptions;
using fx::mpi::Runtime;
using fx::serve::Frontend;
using fx::serve::Overloaded;
using fx::serve::Request;
using fx::serve::Response;
using fx::serve::ServeConfig;
using fx::serve::Status;
using fx::serve::Ticket;

TEST(ServeSoak, OverloadWithFaultsKeepsEveryGuarantee) {
  int nranks = 4;
  fx::core::env_int_in("FFTX_SERVE_SOAK_RANKS", nranks, 2, 64, "soak");

  RunOptions opts = RunOptions::from_env();
  opts.watchdog.window_ms = 60000.0;
  if (opts.faults.kill_rank < 0 && opts.faults.corrupt_rank < 0) {
    opts.faults.kill_rank = 1;
    opts.faults.kill_op = 40;  // mid-soak, inside some group's exchanges
    opts.faults.corrupt_rank = 0;
    opts.faults.corrupt_op = 10;
    opts.faults.corrupt_count = 2;
    opts.faults.only_kind = static_cast<int>(CommOpKind::Alltoallv);
  }

  ServeConfig cfg;
  cfg.queue_depth = 4;  // tiny: overload must shed, not queue
  cfg.coalesce_bands = 8;
  cfg.starvation_ms = 250.0;
  cfg.degrade_watermark = 0.5;
  cfg.breaker_strikes = 0;  // no quarantine: this test measures shedding
  cfg.idle_poll_ms = 1.0;
  cfg.pipeline.guard_exchanges = true;  // corruption must be survivable
  cfg.pipeline.fused_exchange = false;
  cfg.pipeline.overlap_exchange = false;
  cfg.recovery.enabled = true;
  cfg.recovery.checkpoint_bands = 2;
  cfg.recovery.retry.base_delay_ms = 0.1;

  auto& reg = fx::core::MetricsRegistry::global();
  const auto shed0 = reg.counter("fftx.serve.shed.queue_full").value();
  const auto peak_gauge = [&] {
    return reg.gauge("fftx.serve.queue_depth_peak").value();
  };
  const double peak0 = peak_gauge();

  Frontend fe(cfg);
  constexpr int kTenants = 3;
  constexpr int kPerTenant = 40;  // 120 submissions against 12 queue slots
  std::vector<std::vector<Ticket>> admitted(kTenants);
  std::atomic<int> shed{0};

  std::vector<std::thread> clients;
  clients.reserve(kTenants);
  std::thread stopper;
  std::atomic<int> clients_done{0};
  for (int c = 0; c < kTenants; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerTenant; ++i) {
        Request r;
        r.tenant = "tenant" + std::to_string(c);
        r.num_bands = 2 + (i % 3);
        if (i % 4 == 0) r.deadline_s = 0.25;  // some cancel under load
        try {
          admitted[static_cast<std::size_t>(c)].push_back(fe.submit(r));
        } catch (const Overloaded&) {
          shed.fetch_add(1);
        }
        // No pacing: submit as fast as the frontend admits -- this is the
        // ">= 4x sustainable throughput" leg of the acceptance criteria.
      }
      if (clients_done.fetch_add(1) + 1 == kTenants) {
        // Last client out waits for the backlog, then stops the service.
        const double t0 = fx::core::WallTimer::now();
        for (const auto& per_tenant : admitted) {
          for (const auto& t : per_tenant) {
            while (!t.done() &&
                   fx::core::WallTimer::now() - t0 < 120.0) {
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            }
          }
        }
        fe.request_stop();
      }
    });
  }
  Runtime::run(nranks, opts, [&](Comm& world) { fe.serve(world); });
  for (auto& c : clients) c.join();
  const int leftovers = fe.fail_pending("soak: world terminated");

  // Every admitted request reached exactly one terminal state; wait() here
  // can no longer block (everything is done or was just failed).
  int completed = 0, degraded = 0, cancelled = 0, failed = 0;
  int total_admitted = 0;
  for (auto& per_tenant : admitted) {
    for (auto& t : per_tenant) {
      ++total_admitted;
      ASSERT_TRUE(t.done()) << "ticket left unresolved";
      const Response r = t.wait();
      switch (r.status) {
        case Status::Completed:
          ++completed;
          break;
        case Status::CompletedDegraded:
          ++degraded;
          break;
        case Status::DeadlineCancelled:
          ++cancelled;
          break;
        case Status::Failed:
          ++failed;
          break;
      }
    }
  }
  EXPECT_EQ(completed + degraded + cancelled + failed, total_admitted);
  EXPECT_EQ(total_admitted + shed.load(), kTenants * kPerTenant);

  // Overload handling engaged: the excess was shed at the door, not queued.
  EXPECT_GT(shed.load(), 0) << "soak never overloaded the frontend";
  EXPECT_GT(completed + degraded, 0) << "service made no progress";
  EXPECT_EQ(leftovers, 0) << "serve loop exited with unresolved tickets";

  // Bounded queues: the observed peak depth never exceeded the configured
  // bound (per tenant) summed over tenants.
  EXPECT_GT(reg.counter("fftx.serve.shed.queue_full").value(), shed0);
  EXPECT_LE(peak_gauge(), std::max(peak0, 1.0 * kTenants * cfg.queue_depth));
}

}  // namespace
