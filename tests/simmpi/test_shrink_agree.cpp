// Communicator repair: revoke/agree/shrink semantics, multi-kill fault
// injection, and the watchdog's near-miss telemetry.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/metrics.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/faults.hpp"
#include "simmpi/runtime.hpp"
#include "trace/tracer.hpp"

namespace {

using fx::core::CommError;
using fx::core::FaultError;
using fx::core::RevokedError;
using fx::mpi::Comm;
using fx::mpi::CommOpKind;
using fx::mpi::FaultInjector;
using fx::mpi::FaultPlan;
using fx::mpi::ReduceOp;
using fx::mpi::RunOptions;
using fx::mpi::Runtime;

RunOptions quiet_options() {
  RunOptions opts;
  opts.watchdog.window_ms = 60000.0;
  return opts;
}

TEST(Agree, ReturnsMinOverAllRanks) {
  Runtime::run(4, quiet_options(), [&](Comm& comm) {
    const long long mine = comm.rank() + 10;
    EXPECT_EQ(comm.agree(mine), 10);
    // A second round reuses the rendezvous state cleanly.
    EXPECT_EQ(comm.agree(100 - comm.rank()), 97);
  });
}

TEST(Revoke, UnwindsPeersWithRevokedError) {
  std::atomic<int> revoked_unwinds{0};
  Runtime::run(2, quiet_options(), [&](Comm& comm) {
    if (comm.rank() == 0) comm.revoke("test revoke");
    try {
      for (;;) comm.barrier();
    } catch (const RevokedError& e) {
      // RevokedError derives from CommError, so pre-recovery catch sites
      // keep working; the reason names the revoking rank.
      EXPECT_NE(std::string(e.what()).find("revoked"), std::string::npos);
      revoked_unwinds.fetch_add(1);
    }
    EXPECT_TRUE(comm.is_revoked());
  });
  EXPECT_EQ(revoked_unwinds.load(), 2);
}

TEST(Revoke, PoisonsNestedSplitChildren) {
  std::atomic<int> unwound{0};
  // Out-of-band rendezvous: the revoke must not land while a rank is still
  // inside split()'s exit path, or it would unwind from the split instead
  // of from the child collective this test is about.
  std::atomic<int> split_done{0};
  Runtime::run(4, quiet_options(), [&](Comm& world) {
    Comm child = world.split(world.rank() % 2, world.rank());
    split_done.fetch_add(1);
    if (world.rank() == 0) {
      while (split_done.load() < 4) std::this_thread::yield();
      world.revoke("repair needed");
    }
    try {
      // Child barriers run until the parent's revoke reaches the child;
      // ranks 1 and 3 share a child and may complete a few rounds first.
      for (;;) child.barrier();
    } catch (const CommError& e) {
      EXPECT_NE(std::string(e.what()).find("revoked"), std::string::npos);
      unwound.fetch_add(1);
    }
  });
  EXPECT_EQ(unwound.load(), 4);
}

TEST(Shrink, WithoutDeathsYieldsSameSizeWorkingComm) {
  Runtime::run(3, quiet_options(), [&](Comm& comm) {
    comm.revoke("spurious failure, no deaths");
    Comm fresh = comm.shrink();
    EXPECT_EQ(fresh.size(), 3);
    EXPECT_EQ(fresh.rank(), comm.rank());
    EXPECT_FALSE(fresh.is_revoked());
    int one = 1;
    int sum = 0;
    fresh.allreduce(&one, &sum, 1, ReduceOp::Sum);
    EXPECT_EQ(sum, 3);
    // The repaired comm is independent of the revoked parent: a late revoke
    // of the parent must not poison it.
    comm.revoke("second revoke after repair");
    fresh.barrier();
  });
}

TEST(Shrink, AfterKillProducesDenseSurvivorComm) {
  RunOptions opts = quiet_options();
  opts.faults.kill_rank = 1;
  opts.faults.kill_op = 3;
  std::atomic<int> survivors{0};
  std::atomic<int> died{0};
  Runtime::run(4, opts, [&](Comm& comm) {
    try {
      for (int it = 0; it < 8; ++it) {
        double x = 1.0;
        double sum = 0.0;
        comm.allreduce(&x, &sum, 1, ReduceOp::Sum);
      }
    } catch (const FaultError&) {
      // The injected kill: unwind the peers, declare death, bow out.
      comm.revoke("killed by fault injection");
      comm.mark_dead();
      died.fetch_add(1);
      return;
    } catch (const CommError&) {
      comm.revoke("peer failure");
    }
    EXPECT_EQ(comm.agree(comm.rank()), 0);  // Min over survivors {0, 2, 3}
    // agree() completes only once the dead rank is accounted for, so the
    // death count is stable to read now.
    EXPECT_EQ(comm.num_dead(), 1);
    Comm fresh = comm.shrink();
    EXPECT_EQ(fresh.size(), 3);
    // Survivor ranks are dense 0..2 in old-rank order.
    const int expect_rank = comm.rank() == 0 ? 0 : comm.rank() - 1;
    EXPECT_EQ(fresh.rank(), expect_rank);
    double one = 1.0;
    double total = 0.0;
    fresh.allreduce(&one, &total, 1, ReduceOp::Sum);
    EXPECT_EQ(total, 3.0);
    survivors.fetch_add(1);
  });
  EXPECT_EQ(died.load(), 1);
  EXPECT_EQ(survivors.load(), 3);
}

TEST(FaultPlanExt, KillCountKillsARangeOfRanks) {
  RunOptions opts = quiet_options();
  opts.faults.kill_rank = 1;
  opts.faults.kill_count = 2;
  opts.faults.kill_op = 2;
  std::atomic<int> died{0};
  std::atomic<int> survivors{0};
  std::atomic<int> final_size{-1};
  Runtime::run(4, opts, [&](Comm& world) {
    // The full recovery protocol: the two kills may land in one round or
    // staggered across two (a rank unwound by the first revoke before
    // reaching its own kill op dies on its next op after the repair).
    Comm comm = world;
    for (;;) {
      try {
        for (int it = 0; it < 6; ++it) comm.barrier();
        break;
      } catch (const FaultError&) {
        comm.revoke("killed");
        comm.mark_dead();
        died.fetch_add(1);
        return;
      } catch (const CommError&) {
        comm.revoke("peer failure");
        comm = comm.shrink();
      }
    }
    final_size.store(comm.size());
    survivors.fetch_add(1);
  });
  EXPECT_EQ(final_size.load(), 2);
  EXPECT_EQ(died.load(), 2);
  EXPECT_EQ(survivors.load(), 2);
}

TEST(FaultPlanExt, CorruptCountSpansConsecutiveOps) {
  FaultPlan plan;
  plan.corrupt_rank = 0;
  plan.corrupt_op = 1;
  plan.corrupt_count = 3;
  FaultInjector injector(plan, 1);
  std::vector<unsigned char> buf(16, 0);
  const auto hit = [&] {
    return injector.maybe_corrupt(0, CommOpKind::Alltoallv, buf.data(),
                                  buf.size());
  };
  EXPECT_FALSE(hit());  // op 0: before the window
  EXPECT_TRUE(hit());   // ops 1..3: inside
  EXPECT_TRUE(hit());
  EXPECT_TRUE(hit());
  EXPECT_FALSE(hit());  // op 4: window passed
}

TEST(FaultPlanExt, FromEnvReadsCountKnobs) {
  ::setenv("FFTX_FAULT_KILL_RANK", "1", 1);
  ::setenv("FFTX_FAULT_KILL_COUNT", "3", 1);
  ::setenv("FFTX_FAULT_CORRUPT_RANK", "0", 1);
  ::setenv("FFTX_FAULT_CORRUPT_COUNT", "5", 1);
  const FaultPlan plan = FaultPlan::from_env();
  EXPECT_EQ(plan.kill_count, 3);
  EXPECT_EQ(plan.corrupt_count, 5);
  ::unsetenv("FFTX_FAULT_KILL_RANK");
  ::unsetenv("FFTX_FAULT_KILL_COUNT");
  ::unsetenv("FFTX_FAULT_CORRUPT_RANK");
  ::unsetenv("FFTX_FAULT_CORRUPT_COUNT");
}

TEST(Watchdog, NearMissFeedsGaugeAndTraceInstant) {
  fx::trace::Tracer tracer(2);
  {
    fx::trace::AmbientTracerScope ambient(tracer);
    RunOptions opts;
    opts.watchdog.window_ms = 400.0;
    Runtime::run(2, opts, [&](Comm& comm) {
      comm.barrier();
      // Rank 1 parks long enough that rank 0's barrier wait crosses half
      // the watchdog window (a near-miss) but completes before it fires.
      if (comm.rank() == 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
      }
      comm.barrier();
      // Give the monitor a poll cycle to observe the resumed progress.
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      comm.barrier();
    });
  }
  auto& reg = fx::core::MetricsRegistry::global();
  EXPECT_GE(reg.gauge("simmpi.watchdog.near_miss_quiet_ms").value(), 200.0);
  bool saw_instant = false;
  for (const auto& e : tracer.instant_events()) {
    if (e.name.find("watchdog near-miss") != std::string::npos) {
      saw_instant = true;
    }
  }
  EXPECT_TRUE(saw_instant);
}

}  // namespace
