// Collective correctness across a sweep of rank counts, validated against
// hand-computed results.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "simmpi/comm.hpp"
#include "simmpi/runtime.hpp"

namespace {

using fx::mpi::Comm;
using fx::mpi::ReduceOp;
using fx::mpi::Runtime;

class RankSweep : public ::testing::TestWithParam<int> {};

TEST_P(RankSweep, BarrierCompletesRepeatedly) {
  const int n = GetParam();
  std::atomic<int> phase_sum{0};
  Runtime::run(n, [&](Comm& comm) {
    for (int it = 0; it < 5; ++it) {
      phase_sum.fetch_add(1);
      comm.barrier();
      // After the barrier every rank must observe all arrivals of this phase.
      ASSERT_GE(phase_sum.load(), (it + 1) * n);
      comm.barrier();
    }
  });
  EXPECT_EQ(phase_sum.load(), 5 * n);
}

TEST_P(RankSweep, BcastDeliversRootPayload) {
  const int n = GetParam();
  Runtime::run(n, [&](Comm& comm) {
    for (int root = 0; root < n; ++root) {
      std::vector<int> data(4, comm.rank() == root ? 1000 + root : -1);
      comm.bcast_bytes(data.data(), data.size() * sizeof(int), root);
      for (int v : data) ASSERT_EQ(v, 1000 + root);
    }
  });
}

TEST_P(RankSweep, AllreduceSumMaxMin) {
  const int n = GetParam();
  Runtime::run(n, [&](Comm& comm) {
    const int r = comm.rank();
    const double mine[3] = {static_cast<double>(r + 1),
                            static_cast<double>(r * r),
                            static_cast<double>(-r)};
    double out[3] = {};
    comm.allreduce(mine, out, 3, ReduceOp::Sum);
    ASSERT_DOUBLE_EQ(out[0], n * (n + 1) / 2.0);
    ASSERT_DOUBLE_EQ(out[2], -n * (n - 1) / 2.0);

    comm.allreduce(mine, out, 3, ReduceOp::Max);
    ASSERT_DOUBLE_EQ(out[0], static_cast<double>(n));
    ASSERT_DOUBLE_EQ(out[1], static_cast<double>((n - 1) * (n - 1)));

    comm.allreduce(mine, out, 3, ReduceOp::Min);
    ASSERT_DOUBLE_EQ(out[0], 1.0);
    ASSERT_DOUBLE_EQ(out[2], static_cast<double>(-(n - 1)));
  });
}

TEST_P(RankSweep, AllreduceInPlaceAliasing) {
  const int n = GetParam();
  Runtime::run(n, [&](Comm& comm) {
    long v = comm.rank() + 1;
    comm.allreduce(&v, &v, 1, ReduceOp::Sum);
    ASSERT_EQ(v, static_cast<long>(n) * (n + 1) / 2);
  });
}

TEST_P(RankSweep, AllgatherCollectsInRankOrder) {
  const int n = GetParam();
  Runtime::run(n, [&](Comm& comm) {
    const int mine = 7 * comm.rank() + 3;
    std::vector<int> all(static_cast<std::size_t>(n), -1);
    comm.allgather_bytes(&mine, sizeof(int), all.data());
    for (int p = 0; p < n; ++p) {
      ASSERT_EQ(all[static_cast<std::size_t>(p)], 7 * p + 3);
    }
  });
}

TEST_P(RankSweep, AlltoallExchangesPersonalizedBlocks) {
  const int n = GetParam();
  Runtime::run(n, [&](Comm& comm) {
    const int r = comm.rank();
    // Rank r sends value 100*r + p to peer p (two ints per pair).
    std::vector<int> send(static_cast<std::size_t>(2 * n));
    for (int p = 0; p < n; ++p) {
      send[static_cast<std::size_t>(2 * p)] = 100 * r + p;
      send[static_cast<std::size_t>(2 * p + 1)] = -(100 * r + p);
    }
    std::vector<int> recv(static_cast<std::size_t>(2 * n), 0);
    comm.alltoall(std::span<const int>(send), std::span<int>(recv));
    for (int p = 0; p < n; ++p) {
      ASSERT_EQ(recv[static_cast<std::size_t>(2 * p)], 100 * p + r);
      ASSERT_EQ(recv[static_cast<std::size_t>(2 * p + 1)], -(100 * p + r));
    }
  });
}

TEST_P(RankSweep, AlltoallvVariableBlocks) {
  const int n = GetParam();
  Runtime::run(n, [&](Comm& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    const auto un = static_cast<std::size_t>(n);
    // Rank r sends (r + p + 1) elements to peer p; element values encode
    // (sender, receiver, index).
    std::vector<std::size_t> scounts(un);
    std::vector<std::size_t> sdispls(un);
    std::size_t total = 0;
    for (std::size_t p = 0; p < un; ++p) {
      scounts[p] = r + p + 1;
      sdispls[p] = total;
      total += scounts[p];
    }
    std::vector<long> send(total);
    for (std::size_t p = 0; p < un; ++p) {
      for (std::size_t i = 0; i < scounts[p]; ++i) {
        send[sdispls[p] + i] =
            static_cast<long>(r * 1000000 + p * 1000 + i);
      }
    }
    std::vector<std::size_t> rcounts(un);
    std::vector<std::size_t> rdispls(un);
    std::size_t rtotal = 0;
    for (std::size_t p = 0; p < un; ++p) {
      rcounts[p] = p + r + 1;  // peer p sends me p + r + 1
      rdispls[p] = rtotal;
      rtotal += rcounts[p];
    }
    std::vector<long> recv(rtotal, -1);
    comm.alltoallv(send.data(), scounts.data(), sdispls.data(), recv.data(),
                   rcounts.data(), rdispls.data());
    for (std::size_t p = 0; p < un; ++p) {
      for (std::size_t i = 0; i < rcounts[p]; ++i) {
        ASSERT_EQ(recv[rdispls[p] + i],
                  static_cast<long>(p * 1000000 + r * 1000 + i))
            << "p=" << p << " i=" << i;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, RankSweep, ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(Collectives, SizeMismatchAcrossRanksIsDetected) {
  EXPECT_THROW(
      Runtime::run(2,
                   [&](Comm& comm) {
                     // Rank 0 gathers 4 bytes, rank 1 gathers 8: a bug.
                     const std::size_t mine =
                         comm.rank() == 0 ? sizeof(int) : sizeof(long);
                     std::vector<char> buf(64);
                     comm.allgather_bytes(buf.data(), mine, buf.data() + 32);
                   }),
      fx::core::Error);
}

TEST(Collectives, WorldIdIsSharedAndSizeCorrect) {
  Runtime::run(3, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 3);
    int id = comm.id();
    int max_id = 0;
    comm.allreduce(&id, &max_id, 1, ReduceOp::Max);
    EXPECT_EQ(id, max_id);  // same communicator id on every rank
  });
}

TEST(Collectives, RankExceptionAbortsPeersInsteadOfDeadlocking) {
  EXPECT_THROW(Runtime::run(4,
                            [&](Comm& comm) {
                              if (comm.rank() == 2) {
                                throw std::logic_error("rank 2 exploded");
                              }
                              comm.barrier();  // would deadlock without abort
                            }),
               std::logic_error);
}

TEST(Collectives, BytesSentAccounting) {
  Runtime::run(2, [&](Comm& comm) {
    std::vector<int> send(8, comm.rank());
    std::vector<int> recv(8, 0);
    comm.alltoall(std::span<const int>(send), std::span<int>(recv));
    EXPECT_EQ(comm.bytes_sent(), 8 * sizeof(int));
  });
}

}  // namespace
