// Rooted collectives: gather, scatter, reduce.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "simmpi/comm.hpp"
#include "simmpi/runtime.hpp"

namespace {

using fx::mpi::Comm;
using fx::mpi::ReduceOp;
using fx::mpi::Runtime;

class RootedSweep : public ::testing::TestWithParam<int> {};

TEST_P(RootedSweep, GatherCollectsAtEveryRoot) {
  const int n = GetParam();
  Runtime::run(n, [&](Comm& comm) {
    for (int root = 0; root < n; ++root) {
      const long mine = 100 + comm.rank();
      std::vector<long> all(static_cast<std::size_t>(n), -1);
      comm.gather_bytes(&mine, sizeof(long), all.data(), root);
      if (comm.rank() == root) {
        for (int p = 0; p < n; ++p) {
          ASSERT_EQ(all[static_cast<std::size_t>(p)], 100 + p);
        }
      } else {
        ASSERT_EQ(all[0], -1);  // untouched on non-roots
      }
    }
  });
}

TEST_P(RootedSweep, ScatterDistributesRootBlocks) {
  const int n = GetParam();
  Runtime::run(n, [&](Comm& comm) {
    for (int root = 0; root < n; ++root) {
      std::vector<int> blocks;
      if (comm.rank() == root) {
        blocks.resize(static_cast<std::size_t>(n));
        std::iota(blocks.begin(), blocks.end(), root * 1000);
      }
      int mine = -1;
      comm.scatter_bytes(blocks.data(), sizeof(int), &mine, root);
      ASSERT_EQ(mine, root * 1000 + comm.rank());
    }
  });
}

TEST_P(RootedSweep, ReduceDeliversToRootOnly) {
  const int n = GetParam();
  Runtime::run(n, [&](Comm& comm) {
    const double mine[2] = {static_cast<double>(comm.rank() + 1),
                            static_cast<double>(-comm.rank())};
    double out[2] = {-7.0, -7.0};
    comm.reduce(mine, out, 2, ReduceOp::Sum, /*root=*/n - 1);
    if (comm.rank() == n - 1) {
      EXPECT_DOUBLE_EQ(out[0], n * (n + 1) / 2.0);
      EXPECT_DOUBLE_EQ(out[1], -n * (n - 1) / 2.0);
    } else {
      EXPECT_DOUBLE_EQ(out[0], -7.0);  // untouched
    }

    comm.reduce(mine, out, 2, ReduceOp::Max, 0);
    if (comm.rank() == 0) {
      EXPECT_DOUBLE_EQ(out[0], static_cast<double>(n));
      EXPECT_DOUBLE_EQ(out[1], 0.0);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, RootedSweep, ::testing::Values(1, 2, 3, 5, 8));

TEST(Rooted, GatherScatterRoundTrip) {
  Runtime::run(4, [&](Comm& comm) {
    // Root gathers everyone's value, doubles them, scatters them back.
    const int mine = 10 * comm.rank() + 1;
    std::vector<int> all(4);
    comm.gather_bytes(&mine, sizeof(int), all.data(), 0);
    if (comm.rank() == 0) {
      for (int& v : all) v *= 2;
    }
    int back = 0;
    comm.scatter_bytes(all.data(), sizeof(int), &back, 0);
    EXPECT_EQ(back, 2 * mine);
  });
}

TEST(Rooted, InvalidRootThrows) {
  Runtime::run(2, [&](Comm& comm) {
    int v = 0;
    EXPECT_THROW(comm.gather_bytes(&v, sizeof(int), &v, 5),
                 fx::core::Error);
  });
}

}  // namespace
