// Reduced-precision wire formats for the view exchanges: quantizer error
// bounds (the fp32/bf16 oracles), in-flight narrowing through the view
// Alltoallv, wire-sized byte accounting, the quantization-error gauge, and
// loud failure on cross-rank format disagreement.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/rng.hpp"
#include "simmpi/runtime.hpp"
#include "simmpi/wire.hpp"

namespace {

using fx::core::CommError;
using fx::mpi::Comm;
using fx::mpi::Request;
using fx::mpi::RunOptions;
using fx::mpi::Runtime;
using fx::mpi::SegRun;
using fx::mpi::SegView;
using fx::mpi::WireFormat;

RunOptions quiet_options() {
  RunOptions opts;
  opts.watchdog.window_ms = 60000.0;
  return opts;
}

/// Magnitude sweep crossing every binade class the wire has to survive:
/// numbers near 1, large, tiny (still normal in fp32), and negatives.
std::vector<double> sample_values() {
  fx::core::Rng rng(77);
  std::vector<double> xs;
  for (const double scale : {1.0, 1e-30, 1e-3, 1.0, 1e3, 1e30}) {
    for (int i = 0; i < 200; ++i) {
      xs.push_back(rng.uniform(-1.0, 1.0) * scale);
    }
  }
  xs.push_back(0.0);
  xs.push_back(-0.0);
  return xs;
}

TEST(WireFormat, ParseAndPrintRoundTrip) {
  WireFormat f = WireFormat::Fp64;
  EXPECT_TRUE(fx::mpi::parse_wire_format("fp64", f));
  EXPECT_EQ(f, WireFormat::Fp64);
  EXPECT_TRUE(fx::mpi::parse_wire_format("fp32", f));
  EXPECT_EQ(f, WireFormat::Fp32);
  EXPECT_TRUE(fx::mpi::parse_wire_format("bf16", f));
  EXPECT_EQ(f, WireFormat::Bf16);
  EXPECT_FALSE(fx::mpi::parse_wire_format("fp16", f));
  EXPECT_FALSE(fx::mpi::parse_wire_format("", f));
  EXPECT_STREQ(fx::mpi::to_string(WireFormat::Fp32), "fp32");
  EXPECT_STREQ(fx::mpi::to_string(WireFormat::Bf16), "bf16");
  EXPECT_EQ(fx::mpi::wire_scalar_bytes(WireFormat::Fp64), 8U);
  EXPECT_EQ(fx::mpi::wire_scalar_bytes(WireFormat::Fp32), 4U);
  EXPECT_EQ(fx::mpi::wire_scalar_bytes(WireFormat::Bf16), 2U);
}

TEST(WireFormat, Fp32QuantizerStaysWithinHalfUlpAndIsIdempotent) {
  for (const double x : sample_values()) {
    const double q = fx::mpi::wire_roundtrip(WireFormat::Fp32, x);
    EXPECT_LE(fx::mpi::wire_ulp_err(WireFormat::Fp32, x, q), 0.5) << x;
    // Re-encoding a round-tripped value is exact: the guarded digests rely
    // on this to compare sender and receiver wire bytes.
    EXPECT_EQ(fx::mpi::wire_roundtrip(WireFormat::Fp32, q), q) << x;
  }
}

TEST(WireFormat, Bf16QuantizerStaysWithinBoundAndIsIdempotent) {
  for (const double x : sample_values()) {
    const double q = fx::mpi::wire_roundtrip(WireFormat::Bf16, x);
    EXPECT_LE(fx::mpi::wire_ulp_err(WireFormat::Bf16, x, q), 0.51) << x;
    EXPECT_EQ(fx::mpi::wire_roundtrip(WireFormat::Bf16, q), q) << x;
  }
}

TEST(WireFormat, SpecialValuesSurviveTheNarrowWire) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (const WireFormat f : {WireFormat::Fp32, WireFormat::Bf16}) {
    EXPECT_TRUE(std::isnan(fx::mpi::wire_roundtrip(f, nan)));
    EXPECT_EQ(fx::mpi::wire_roundtrip(f, inf), inf);
    EXPECT_EQ(fx::mpi::wire_roundtrip(f, -inf), -inf);
    EXPECT_EQ(fx::mpi::wire_roundtrip(f, 0.0), 0.0);
    EXPECT_EQ(fx::mpi::wire_roundtrip(f, 1.0), 1.0);   // exact in bf16
    EXPECT_EQ(fx::mpi::wire_roundtrip(f, -0.5), -0.5); // exact power of two
  }
}

/// Per-rank exchange of `len` doubles to every peer through single-run
/// views, at the given wire format.  Returns what this rank received.
std::vector<double> exchange_at(Comm& comm, const std::vector<double>& send,
                                std::size_t len, WireFormat wire, int tag) {
  const auto n = static_cast<std::size_t>(comm.size());
  std::vector<double> recv(n * len, -1.0);
  std::vector<SegRun> sruns(n);
  std::vector<SegRun> rruns(n);
  std::vector<SegView> sviews(n);
  std::vector<SegView> rviews(n);
  for (std::size_t p = 0; p < n; ++p) {
    sruns[p] = SegRun{p * len, len, 1};
    rruns[p] = SegRun{p * len, len, 1};
    sviews[p] = SegView(&sruns[p], 1);
    rviews[p] = SegView(&rruns[p], 1);
  }
  comm.alltoallv_view(send.data(), sviews, recv.data(), rviews,
                      sizeof(double), tag, wire);
  return recv;
}

TEST(WireExchange, NarrowWireDeliversExactlyTheQuantizedPayload) {
  // The in-process "wire" is a fused quantize->dequantize in the copy: the
  // receiver must see bit-exactly wire_roundtrip() of what was sent.
  constexpr std::size_t kLen = 257;  // odd length exercises run tails
  for (const WireFormat wire :
       {WireFormat::Fp64, WireFormat::Fp32, WireFormat::Bf16}) {
    Runtime::run(3, [&](Comm& comm) {
      const auto n = static_cast<std::size_t>(comm.size());
      fx::core::Rng rng(100 + static_cast<std::uint64_t>(comm.rank()));
      std::vector<double> send(n * kLen);
      for (double& x : send) x = rng.uniform(-1.0, 1.0) * 1e3;
      const auto recv =
          exchange_at(comm, send, kLen, wire, static_cast<int>(wire));
      for (std::size_t p = 0; p < n; ++p) {
        fx::core::Rng peer(100 + p);
        std::vector<double> psend(n * kLen);
        for (double& x : psend) x = peer.uniform(-1.0, 1.0) * 1e3;
        for (std::size_t i = 0; i < kLen; ++i) {
          const double sent =
              psend[static_cast<std::size_t>(comm.rank()) * kLen + i];
          EXPECT_EQ(recv[p * kLen + i], fx::mpi::wire_roundtrip(wire, sent))
              << "peer " << p << " elem " << i << " wire "
              << fx::mpi::to_string(wire);
        }
      }
    });
  }
}

TEST(WireExchange, StridedViewsQuantizeInFlight) {
  // Column exchange (stride 2) at bf16: narrowing must follow the run
  // walk, not just contiguous fast paths.
  Runtime::run(2, [&](Comm& comm) {
    const int me = comm.rank();
    std::vector<double> mat = {1.0 + me * 0.001, 2.0 + me,
                               3.0 + me * 0.001, 4.0 + me};
    std::vector<double> out(4, -1.0);
    std::vector<SegRun> sruns = {SegRun{0, 2, 2}, SegRun{1, 2, 2}};
    std::vector<SegRun> rruns = {SegRun{0, 2, 2}, SegRun{1, 2, 2}};
    std::vector<SegView> sviews = {SegView(&sruns[0], 1),
                                   SegView(&sruns[1], 1)};
    std::vector<SegView> rviews = {SegView(&rruns[0], 1),
                                   SegView(&rruns[1], 1)};
    comm.alltoallv_view(mat.data(), sviews, out.data(), rviews,
                        sizeof(double), /*tag=*/0, WireFormat::Bf16);
    for (int p = 0; p < 2; ++p) {
      // Peer p sent its column me: elements mat[me] and mat[2 + me].
      const double sent0 = (me == 0 ? 1.0 + p * 0.001 : 2.0 + p);
      const double sent1 = (me == 0 ? 3.0 + p * 0.001 : 4.0 + p);
      EXPECT_EQ(out[static_cast<std::size_t>(p)],
                fx::mpi::wire_roundtrip(WireFormat::Bf16, sent0));
      EXPECT_EQ(out[static_cast<std::size_t>(2 + p)],
                fx::mpi::wire_roundtrip(WireFormat::Bf16, sent1));
    }
  });
}

TEST(WireExchange, ByteAccountingCountsWireSizeNotPayloadSize) {
  auto& bytes = fx::core::MetricsRegistry::global().counter(
      "simmpi.ialltoallv.bytes");
  constexpr std::size_t kLen = 64;
  auto measure = [&](WireFormat wire) {
    const auto before = bytes.value();
    Runtime::run(2, [&](Comm& comm) {
      const auto n = static_cast<std::size_t>(comm.size());
      std::vector<double> send(n * kLen, 1.25);
      exchange_at(comm, send, kLen, wire, /*tag=*/0);
    });
    return bytes.value() - before;
  };
  const auto fp64 = measure(WireFormat::Fp64);
  EXPECT_EQ(measure(WireFormat::Fp32), fp64 / 2);
  EXPECT_EQ(measure(WireFormat::Bf16), fp64 / 4);
}

TEST(WireExchange, UlpGaugeTracksPeakQuantizationError) {
  auto& gauge = fx::core::MetricsRegistry::global().gauge(
      "fftx.exchange.wire_max_ulp_err");
  gauge.reset();
  Runtime::run(2, [&](Comm& comm) {
    const auto n = static_cast<std::size_t>(comm.size());
    fx::core::Rng rng(7 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<double> send(n * 32);
    for (double& x : send) x = rng.uniform(0.5, 2.0);
    exchange_at(comm, send, 32, WireFormat::Bf16, /*tag=*/0);
  });
  // Random mantissas land strictly between bf16 grid points, but never
  // beyond the round-to-nearest bound.
  EXPECT_GT(gauge.value(), 0.0);
  EXPECT_LE(gauge.value(), 0.51);
}

TEST(WireExchange, FormatMismatchNamesBothRanks) {
  try {
    Runtime::run(2, quiet_options(), [&](Comm& comm) {
      const auto n = static_cast<std::size_t>(comm.size());
      std::vector<double> send(n * 4, 1.0);
      const WireFormat mine =
          comm.rank() == 0 ? WireFormat::Fp32 : WireFormat::Bf16;
      exchange_at(comm, send, 4, mine, /*tag=*/0);
    });
    FAIL() << "expected CommError";
  } catch (const CommError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("wire format mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("fp32"), std::string::npos) << what;
    EXPECT_NE(what.find("bf16"), std::string::npos) << what;
  }
}

}  // namespace
