// Nonblocking point-to-point: completion semantics, posting order,
// mixing with blocking receives, and the overlap pattern the paper's
// future work (MPI inside tasks) relies on.  Plus the nonblocking
// collectives (Ialltoall/Ialltoallv, contiguous and scatter-gather views)
// behind the pipeline's fused overlapped transposes, including their
// behavior under fault injection, the watchdog, and revocation.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/metrics.hpp"
#include "core/timer.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/runtime.hpp"

namespace {

using fx::core::CommError;
using fx::core::DeadlockError;
using fx::core::FaultError;
using fx::mpi::Comm;
using fx::mpi::CommOpKind;
using fx::mpi::Request;
using fx::mpi::RunOptions;
using fx::mpi::Runtime;
using fx::mpi::SegRun;
using fx::mpi::SegView;

/// Quiet-watchdog options for tests that exercise other features.
RunOptions quiet_options() {
  RunOptions opts;
  opts.watchdog.window_ms = 60000.0;
  return opts;
}

/// Elements rank r sends to rank p in the irregular exchange tests.
std::size_t seg_count(int r, int p) {
  return static_cast<std::size_t>(1 + r + 2 * p);
}

double seg_value(int r, int p, std::size_t i) {
  return 100.0 * r + 10.0 * p + static_cast<double>(i);
}

TEST(Nonblocking, DefaultRequestIsComplete) {
  Request r;
  EXPECT_TRUE(r.test());
  r.wait();  // must not block
}

TEST(Nonblocking, IsendCompletesImmediately) {
  Runtime::run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      const int v = 42;
      Request r = comm.isend_bytes(1, &v, sizeof(int), 0);
      EXPECT_TRUE(r.test());
      r.wait();
    } else {
      int v = 0;
      comm.recv_bytes(0, &v, sizeof(int), 0);
      EXPECT_EQ(v, 42);
    }
  });
}

TEST(Nonblocking, IrecvBeforeSendCompletesOnArrival) {
  Runtime::run(2, [&](Comm& comm) {
    if (comm.rank() == 1) {
      int v = -1;
      Request r = comm.irecv_bytes(0, &v, sizeof(int), 7);
      comm.barrier();  // guarantee the irecv is posted before the send
      r.wait();
      EXPECT_EQ(v, 123);
    } else {
      comm.barrier();
      const int v = 123;
      comm.send_bytes(1, &v, sizeof(int), 7);
    }
  });
}

TEST(Nonblocking, IrecvAfterSendCompletesImmediately) {
  Runtime::run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      const double v = 2.5;
      comm.send_bytes(1, &v, sizeof(double), 0);
      comm.barrier();
    } else {
      comm.barrier();  // message already queued
      double v = 0.0;
      Request r = comm.irecv_bytes(0, &v, sizeof(double), 0);
      EXPECT_TRUE(r.test());
      EXPECT_DOUBLE_EQ(v, 2.5);
    }
  });
}

TEST(Nonblocking, ManyPostedReceivesMatchInOrder) {
  Runtime::run(2, [&](Comm& comm) {
    constexpr int kN = 16;
    if (comm.rank() == 1) {
      std::vector<int> out(kN, -1);
      std::vector<Request> reqs;
      reqs.reserve(kN);
      for (int i = 0; i < kN; ++i) {
        reqs.push_back(
            comm.irecv_bytes(0, &out[static_cast<std::size_t>(i)],
                             sizeof(int), 0));
      }
      comm.barrier();
      for (auto& r : reqs) r.wait();
      for (int i = 0; i < kN; ++i) {
        EXPECT_EQ(out[static_cast<std::size_t>(i)], 1000 + i);
      }
    } else {
      comm.barrier();
      for (int i = 0; i < kN; ++i) {
        const int v = 1000 + i;
        comm.send_bytes(1, &v, sizeof(int), 0);
      }
    }
  });
}

TEST(Nonblocking, OverlapComputeWithPendingReceive) {
  Runtime::run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> payload(1000);
      std::iota(payload.begin(), payload.end(), 0.0);
      comm.barrier();
      comm.send_bytes(1, payload.data(), payload.size() * sizeof(double), 1);
    } else {
      std::vector<double> incoming(1000, 0.0);
      Request r = comm.irecv_bytes(
          0, incoming.data(), incoming.size() * sizeof(double), 1);
      comm.barrier();
      // "Compute" while the transfer is in flight.
      double acc = 0.0;
      for (int i = 0; i < 10000; ++i) acc += static_cast<double>(i) * 0.5;
      EXPECT_GT(acc, 0.0);
      r.wait();
      EXPECT_DOUBLE_EQ(incoming[999], 999.0);
    }
  });
}

/// Builds the irregular send/recv buffers of `seg_count`/`seg_value` for
/// `rank` in a `size`-rank world, returning {send, scounts, sdispls}.
struct VBufs {
  std::vector<double> send;
  std::vector<double> recv;
  std::vector<std::size_t> scounts, sdispls, rcounts, rdispls;
};

VBufs make_vbufs(int rank, int size) {
  VBufs b;
  const auto n = static_cast<std::size_t>(size);
  b.scounts.resize(n);
  b.sdispls.resize(n);
  b.rcounts.resize(n);
  b.rdispls.resize(n);
  std::size_t soff = 0;
  std::size_t roff = 0;
  for (int p = 0; p < size; ++p) {
    const auto pu = static_cast<std::size_t>(p);
    b.scounts[pu] = seg_count(rank, p);
    b.sdispls[pu] = soff;
    soff += b.scounts[pu];
    b.rcounts[pu] = seg_count(p, rank);
    b.rdispls[pu] = roff;
    roff += b.rcounts[pu];
  }
  b.send.resize(soff);
  b.recv.resize(roff, -1.0);
  for (int p = 0; p < size; ++p) {
    const auto pu = static_cast<std::size_t>(p);
    for (std::size_t i = 0; i < b.scounts[pu]; ++i) {
      b.send[b.sdispls[pu] + i] = seg_value(rank, p, i);
    }
  }
  return b;
}

void expect_vrecv(const VBufs& b, int rank, int size) {
  for (int p = 0; p < size; ++p) {
    const auto pu = static_cast<std::size_t>(p);
    for (std::size_t i = 0; i < b.rcounts[pu]; ++i) {
      EXPECT_DOUBLE_EQ(b.recv[b.rdispls[pu] + i], seg_value(p, rank, i))
          << "from rank " << p << " element " << i;
    }
  }
}

TEST(NonblockingCollective, IalltoallvMatchesBlockingAlltoallv) {
  Runtime::run(4, [&](Comm& comm) {
    VBufs nb = make_vbufs(comm.rank(), comm.size());
    VBufs bl = make_vbufs(comm.rank(), comm.size());
    Request r = comm.ialltoallv_bytes(
        nb.send.data(), nb.scounts.data(), nb.sdispls.data(), nb.recv.data(),
        nb.rcounts.data(), nb.rdispls.data(), sizeof(double), /*tag=*/3);
    comm.alltoallv(bl.send.data(), bl.scounts.data(), bl.sdispls.data(),
                   bl.recv.data(), bl.rcounts.data(), bl.rdispls.data(),
                   /*tag=*/4);
    r.wait();
    EXPECT_TRUE(r.test());
    expect_vrecv(nb, comm.rank(), comm.size());
    EXPECT_EQ(nb.recv, bl.recv);
  });
}

TEST(NonblockingCollective, IalltoallMatchesBlockingAlltoall) {
  Runtime::run(3, [&](Comm& comm) {
    const auto n = static_cast<std::size_t>(comm.size());
    std::vector<std::int64_t> send(n);
    std::vector<std::int64_t> nb_recv(n, -1);
    std::vector<std::int64_t> bl_recv(n, -1);
    for (std::size_t p = 0; p < n; ++p) {
      send[p] = 1000 * comm.rank() + static_cast<std::int64_t>(p);
    }
    Request r = comm.ialltoall_bytes(send.data(), nb_recv.data(),
                                     sizeof(std::int64_t), /*tag=*/0);
    comm.alltoall_bytes(send.data(), bl_recv.data(), sizeof(std::int64_t),
                        /*tag=*/1);
    r.wait();
    EXPECT_EQ(nb_recv, bl_recv);
    for (std::size_t p = 0; p < n; ++p) {
      EXPECT_EQ(nb_recv[p], static_cast<std::int64_t>(1000 * p) + comm.rank());
    }
  });
}

TEST(NonblockingCollective, StridedViewsExchangeWithoutStaging) {
  // Rank r sends column r of a 2x2 row-major matrix (stride 2) and
  // receives each peer's segment into column slots of its own matrix:
  // a transpose exchanged directly between strided layouts, no staging.
  Runtime::run(2, [&](Comm& comm) {
    const int me = comm.rank();
    std::vector<double> mat = {10.0 + me, 20.0 + me,   // row 0
                               30.0 + me, 40.0 + me};  // row 1
    std::vector<double> out(4, -1.0);
    // Send column p to peer p; receive from peer p into column p.
    std::vector<SegRun> sruns = {SegRun{0, 2, 2}, SegRun{1, 2, 2}};
    std::vector<SegRun> rruns = {SegRun{0, 2, 2}, SegRun{1, 2, 2}};
    std::vector<SegView> sviews = {SegView(&sruns[0], 1),
                                   SegView(&sruns[1], 1)};
    std::vector<SegView> rviews = {SegView(&rruns[0], 1),
                                   SegView(&rruns[1], 1)};
    Request r = comm.ialltoallv_view(mat.data(), sviews, out.data(), rviews,
                                     sizeof(double), /*tag=*/0);
    r.wait();
    // out column p = peer p's column me.
    for (int p = 0; p < 2; ++p) {
      EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(p)],
                       10.0 * (1 + me) + p);
      EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(2 + p)],
                       10.0 * (3 + me) + p);
    }
  });
}

TEST(NonblockingCollective, PostedExchangeOverlapsCompute) {
  Runtime::run(2, [&](Comm& comm) {
    const auto n = static_cast<std::size_t>(comm.size());
    std::vector<double> send(n, static_cast<double>(comm.rank()));
    std::vector<double> recv(n, -1.0);
    Request r = comm.ialltoall_bytes(send.data(), recv.data(),
                                     sizeof(double), /*tag=*/0);
    // "Compute" while the exchange is in flight; the request makes
    // progress in wait(), not here.
    double acc = 0.0;
    for (int i = 0; i < 10000; ++i) acc += static_cast<double>(i) * 0.5;
    EXPECT_GT(acc, 0.0);
    r.wait();
    for (std::size_t p = 0; p < n; ++p) {
      EXPECT_DOUBLE_EQ(recv[p], static_cast<double>(p));
    }
  });
}

TEST(NonblockingCollective, SeveralInFlightSameTagMatchInPostOrder) {
  // The overlapped pipeline posts one exchange per Z-FFT chunk, all under
  // the iteration tag; (kind, tag, seq) matching must pair chunk c with
  // chunk c on every rank.
  Runtime::run(2, [&](Comm& comm) {
    constexpr int kChunks = 4;
    const auto n = static_cast<std::size_t>(comm.size());
    std::vector<std::vector<double>> send(kChunks);
    std::vector<std::vector<double>> recv(kChunks);
    std::vector<Request> reqs;
    for (int c = 0; c < kChunks; ++c) {
      send[c].assign(n, 100.0 * comm.rank() + c);
      recv[c].assign(n, -1.0);
      reqs.push_back(comm.ialltoall_bytes(send[c].data(), recv[c].data(),
                                          sizeof(double), /*tag=*/9));
    }
    for (int c = kChunks - 1; c >= 0; --c) reqs[c].wait();
    for (int c = 0; c < kChunks; ++c) {
      for (std::size_t p = 0; p < n; ++p) {
        EXPECT_DOUBLE_EQ(recv[c][p], 100.0 * static_cast<double>(p) + c);
      }
    }
  });
}

TEST(NonblockingCollective, AliasedBuffersThrow) {
  EXPECT_THROW(Runtime::run(1,
                            [&](Comm& comm) {
                              std::vector<double> buf(1, 0.0);
                              comm.ialltoall_bytes(buf.data(), buf.data(),
                                                   sizeof(double))
                                  .wait();
                            }),
               fx::core::Error);
}

TEST(NonblockingCollective, BlockingAlltoallvAliasedBuffersThrow) {
  // The aliasing guard the blocking variant was missing (alltoall_bytes
  // always had it).
  EXPECT_THROW(Runtime::run(1,
                            [&](Comm& comm) {
                              std::vector<double> buf(1, 0.0);
                              const std::size_t one = 1;
                              const std::size_t zero = 0;
                              comm.alltoallv_bytes(buf.data(), &one, &zero,
                                                   buf.data(), &one, &zero,
                                                   sizeof(double));
                            }),
               fx::core::Error);
}

TEST(NonblockingCollective, PostedAndCompletedCountersAdvance) {
  auto& reg = fx::core::MetricsRegistry::global();
  const auto posted0 = reg.counter("simmpi.ialltoallv.posted").value();
  const auto completed0 = reg.counter("simmpi.ialltoallv.completed").value();
  Runtime::run(2, [&](Comm& comm) {
    const auto n = static_cast<std::size_t>(comm.size());
    std::vector<double> send(n, 1.0);
    std::vector<double> recv(n, 0.0);
    comm.ialltoall_bytes(send.data(), recv.data(), sizeof(double)).wait();
  });
  EXPECT_EQ(reg.counter("simmpi.ialltoallv.posted").value(), posted0 + 2);
  EXPECT_EQ(reg.counter("simmpi.ialltoallv.completed").value(),
            completed0 + 2);
}

TEST(NonblockingFaults, KillMidExchangeUnwindsPeers) {
  RunOptions opts = quiet_options();
  opts.faults.kill_rank = 1;
  opts.faults.kill_op = 0;
  opts.faults.only_kind = static_cast<int>(CommOpKind::Ialltoallv);
  std::atomic<int> peer_unwinds{0};
  try {
    Runtime::run(4, opts, [&](Comm& comm) {
      try {
        VBufs b = make_vbufs(comm.rank(), comm.size());
        comm.ialltoallv_bytes(b.send.data(), b.scounts.data(),
                              b.sdispls.data(), b.recv.data(),
                              b.rcounts.data(), b.rdispls.data(),
                              sizeof(double))
            .wait();
      } catch (const CommError& e) {
        EXPECT_NE(std::string(e.what()).find("rank 1 failed"),
                  std::string::npos)
            << e.what();
        peer_unwinds.fetch_add(1);
        throw;
      }
    });
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_NE(std::string(e.what()).find("killed rank 1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("Ialltoallv"), std::string::npos);
  }
  EXPECT_EQ(peer_unwinds.load(), 3);
}

TEST(NonblockingFaults, StallMidExchangeStillCompletes) {
  RunOptions opts = quiet_options();
  opts.faults.stall_rank = 0;
  opts.faults.stall_op = 0;
  opts.faults.stall_ms = 50.0;
  opts.faults.only_kind = static_cast<int>(CommOpKind::Ialltoallv);
  fx::core::WallTimer timer;
  Runtime::run(2, opts, [&](Comm& comm) {
    VBufs b = make_vbufs(comm.rank(), comm.size());
    Request r = comm.ialltoallv_bytes(
        b.send.data(), b.scounts.data(), b.sdispls.data(), b.recv.data(),
        b.rcounts.data(), b.rdispls.data(), sizeof(double));
    r.wait();
    expect_vrecv(b, comm.rank(), comm.size());
  });
  EXPECT_GE(timer.seconds(), 0.045);
}

TEST(NonblockingFaults, CorruptMidFlightFlipsExactlyOneBit) {
  RunOptions opts = quiet_options();
  opts.faults.corrupt_rank = 0;
  opts.faults.corrupt_op = 0;
  opts.faults.only_kind = static_cast<int>(CommOpKind::Ialltoallv);
  std::atomic<int> flipped_bits{0};
  Runtime::run(2, opts, [&](Comm& comm) {
    VBufs b = make_vbufs(comm.rank(), comm.size());
    comm.ialltoallv_bytes(b.send.data(), b.scounts.data(), b.sdispls.data(),
                          b.recv.data(), b.rcounts.data(), b.rdispls.data(),
                          sizeof(double))
        .wait();
    // Diff the received payload bitwise against the clean expectation.
    VBufs want = make_vbufs(comm.rank(), comm.size());
    for (int p = 0; p < comm.size(); ++p) {
      const auto pu = static_cast<std::size_t>(p);
      for (std::size_t i = 0; i < want.rcounts[pu]; ++i) {
        want.recv[want.rdispls[pu] + i] = seg_value(p, comm.rank(), i);
      }
    }
    for (std::size_t k = 0; k < b.recv.size(); ++k) {
      std::uint64_t got = 0;
      std::uint64_t exp = 0;
      std::memcpy(&got, &b.recv[k], sizeof(got));
      std::memcpy(&exp, &want.recv[k], sizeof(exp));
      flipped_bits.fetch_add(std::popcount(got ^ exp));
    }
  });
  EXPECT_EQ(flipped_bits.load(), 1);
}

TEST(NonblockingFaults, WatchdogCatchesNeverMatchedExchange) {
  // Rank 1 never posts: rank 0 blocks in wait() with its ProgressBoard
  // registration, so the deadlock report names the nonblocking kind.
  RunOptions opts;
  opts.watchdog.window_ms = 250.0;
  fx::core::WallTimer timer;
  try {
    Runtime::run(2, opts, [&](Comm& comm) {
      if (comm.rank() == 0) {
        const auto n = static_cast<std::size_t>(comm.size());
        std::vector<double> send(n, 0.0);
        std::vector<double> recv(n, 0.0);
        comm.ialltoall_bytes(send.data(), recv.data(), sizeof(double),
                             /*tag=*/5)
            .wait();
      } else {
        std::this_thread::sleep_for(std::chrono::seconds(1));
      }
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("Ialltoall"), std::string::npos)
        << e.what();
  }
  EXPECT_LT(timer.seconds(), 10.0);
}

TEST(NonblockingFaults, RevokedCommUnwindsWaiter) {
  std::atomic<int> revoked_unwinds{0};
  Runtime::run(2, quiet_options(), [&](Comm& comm) {
    if (comm.rank() == 1) {
      // Let rank 0 block in the wait first, then revoke.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      comm.revoke("test revoke");
      return;
    }
    try {
      const auto n = static_cast<std::size_t>(comm.size());
      std::vector<double> send(n, 0.0);
      std::vector<double> recv(n, 0.0);
      comm.ialltoall_bytes(send.data(), recv.data(), sizeof(double)).wait();
      FAIL() << "expected RevokedError";
    } catch (const fx::core::RevokedError& e) {
      EXPECT_NE(std::string(e.what()).find("revoked"), std::string::npos);
      revoked_unwinds.fetch_add(1);
    }
  });
  EXPECT_EQ(revoked_unwinds.load(), 1);
}

TEST(Nonblocking, SizeMismatchOnPostedReceiveThrows) {
  EXPECT_THROW(
      Runtime::run(2,
                   [&](Comm& comm) {
                     if (comm.rank() == 1) {
                       long v = 0;
                       Request r =
                           comm.irecv_bytes(0, &v, sizeof(long), 0);
                       comm.barrier();
                       r.wait();
                     } else {
                       comm.barrier();
                       const int v = 1;
                       comm.send_bytes(1, &v, sizeof(int), 0);
                     }
                   }),
      fx::core::Error);
}

}  // namespace
