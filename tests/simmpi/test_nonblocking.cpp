// Nonblocking point-to-point: completion semantics, posting order,
// mixing with blocking receives, and the overlap pattern the paper's
// future work (MPI inside tasks) relies on.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "simmpi/comm.hpp"
#include "simmpi/runtime.hpp"

namespace {

using fx::mpi::Comm;
using fx::mpi::Request;
using fx::mpi::Runtime;

TEST(Nonblocking, DefaultRequestIsComplete) {
  Request r;
  EXPECT_TRUE(r.test());
  r.wait();  // must not block
}

TEST(Nonblocking, IsendCompletesImmediately) {
  Runtime::run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      const int v = 42;
      Request r = comm.isend_bytes(1, &v, sizeof(int), 0);
      EXPECT_TRUE(r.test());
      r.wait();
    } else {
      int v = 0;
      comm.recv_bytes(0, &v, sizeof(int), 0);
      EXPECT_EQ(v, 42);
    }
  });
}

TEST(Nonblocking, IrecvBeforeSendCompletesOnArrival) {
  Runtime::run(2, [&](Comm& comm) {
    if (comm.rank() == 1) {
      int v = -1;
      Request r = comm.irecv_bytes(0, &v, sizeof(int), 7);
      comm.barrier();  // guarantee the irecv is posted before the send
      r.wait();
      EXPECT_EQ(v, 123);
    } else {
      comm.barrier();
      const int v = 123;
      comm.send_bytes(1, &v, sizeof(int), 7);
    }
  });
}

TEST(Nonblocking, IrecvAfterSendCompletesImmediately) {
  Runtime::run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      const double v = 2.5;
      comm.send_bytes(1, &v, sizeof(double), 0);
      comm.barrier();
    } else {
      comm.barrier();  // message already queued
      double v = 0.0;
      Request r = comm.irecv_bytes(0, &v, sizeof(double), 0);
      EXPECT_TRUE(r.test());
      EXPECT_DOUBLE_EQ(v, 2.5);
    }
  });
}

TEST(Nonblocking, ManyPostedReceivesMatchInOrder) {
  Runtime::run(2, [&](Comm& comm) {
    constexpr int kN = 16;
    if (comm.rank() == 1) {
      std::vector<int> out(kN, -1);
      std::vector<Request> reqs;
      reqs.reserve(kN);
      for (int i = 0; i < kN; ++i) {
        reqs.push_back(
            comm.irecv_bytes(0, &out[static_cast<std::size_t>(i)],
                             sizeof(int), 0));
      }
      comm.barrier();
      for (auto& r : reqs) r.wait();
      for (int i = 0; i < kN; ++i) {
        EXPECT_EQ(out[static_cast<std::size_t>(i)], 1000 + i);
      }
    } else {
      comm.barrier();
      for (int i = 0; i < kN; ++i) {
        const int v = 1000 + i;
        comm.send_bytes(1, &v, sizeof(int), 0);
      }
    }
  });
}

TEST(Nonblocking, OverlapComputeWithPendingReceive) {
  Runtime::run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> payload(1000);
      std::iota(payload.begin(), payload.end(), 0.0);
      comm.barrier();
      comm.send_bytes(1, payload.data(), payload.size() * sizeof(double), 1);
    } else {
      std::vector<double> incoming(1000, 0.0);
      Request r = comm.irecv_bytes(
          0, incoming.data(), incoming.size() * sizeof(double), 1);
      comm.barrier();
      // "Compute" while the transfer is in flight.
      double acc = 0.0;
      for (int i = 0; i < 10000; ++i) acc += static_cast<double>(i) * 0.5;
      EXPECT_GT(acc, 0.0);
      r.wait();
      EXPECT_DOUBLE_EQ(incoming[999], 999.0);
    }
  });
}

TEST(Nonblocking, SizeMismatchOnPostedReceiveThrows) {
  EXPECT_THROW(
      Runtime::run(2,
                   [&](Comm& comm) {
                     if (comm.rank() == 1) {
                       long v = 0;
                       Request r =
                           comm.irecv_bytes(0, &v, sizeof(long), 0);
                       comm.barrier();
                       r.wait();
                     } else {
                       comm.barrier();
                       const int v = 1;
                       comm.send_bytes(1, &v, sizeof(int), 0);
                     }
                   }),
      fx::core::Error);
}

}  // namespace
