// Tagged out-of-order collective matching, communicator splitting (the
// two-layer FFT scheme), point-to-point ordering, and observer events.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "simmpi/comm.hpp"
#include "simmpi/runtime.hpp"

namespace {

using fx::mpi::Comm;
using fx::mpi::CommEvent;
using fx::mpi::CommOpKind;
using fx::mpi::ReduceOp;
using fx::mpi::Runtime;

TEST(Tags, CollectivesMatchByTagNotArrivalOrder) {
  // Even ranks start tag A's collective first, odd ranks tag B's first;
  // both are in flight concurrently (separate threads -- collectives are
  // blocking rendezvous, so a *single* thread issuing mismatched orders
  // across ranks would deadlock by construction, exactly like MPI).
  // Tag-based matching must pair the instances regardless of the
  // rank-dependent start order.
  constexpr int kRanks = 4;
  Runtime::run(kRanks, [&](Comm& comm) {
    const int r = comm.rank();
    std::vector<int> sa(kRanks, 10 + r);
    std::vector<int> sb(kRanks, 20 + r);
    std::vector<int> ra(kRanks, -1);
    std::vector<int> rb(kRanks, -1);
    {
      std::jthread first([&] {
        if (r % 2 == 0) {
          comm.alltoall(std::span<const int>(sa), std::span<int>(ra), 1);
        } else {
          comm.alltoall(std::span<const int>(sb), std::span<int>(rb), 2);
        }
      });
      // Stagger the second issue to randomize arrival interleavings.
      std::this_thread::yield();
      std::jthread second([&] {
        if (r % 2 == 0) {
          comm.alltoall(std::span<const int>(sb), std::span<int>(rb), 2);
        } else {
          comm.alltoall(std::span<const int>(sa), std::span<int>(ra), 1);
        }
      });
    }
    for (int p = 0; p < kRanks; ++p) {
      ASSERT_EQ(ra[static_cast<std::size_t>(p)], 10 + p);
      ASSERT_EQ(rb[static_cast<std::size_t>(p)], 20 + p);
    }
  });
}

TEST(Tags, ConcurrentCollectivesFromThreadsOfOneRank) {
  // Each rank runs two threads, one per tag -- the task-per-FFT situation.
  constexpr int kRanks = 3;
  Runtime::run(kRanks, [&](Comm& comm) {
    const int r = comm.rank();
    std::vector<double> s1(kRanks, 1.0 + r);
    std::vector<double> s2(kRanks, 100.0 + r);
    std::vector<double> r1(kRanks);
    std::vector<double> r2(kRanks);
    {
      std::jthread t1([&] {
        comm.alltoall(std::span<const double>(s1), std::span<double>(r1), 1);
      });
      std::jthread t2([&] {
        comm.alltoall(std::span<const double>(s2), std::span<double>(r2), 2);
      });
    }
    for (int p = 0; p < kRanks; ++p) {
      ASSERT_DOUBLE_EQ(r1[static_cast<std::size_t>(p)], 1.0 + p);
      ASSERT_DOUBLE_EQ(r2[static_cast<std::size_t>(p)], 100.0 + p);
    }
  });
}

TEST(Tags, SameTagRepeatedCallsMatchInOrder) {
  constexpr int kRanks = 2;
  Runtime::run(kRanks, [&](Comm& comm) {
    for (int it = 0; it < 10; ++it) {
      long v = comm.rank() + it;
      long sum = 0;
      comm.allreduce(&v, &sum, 1, ReduceOp::Sum, /*tag=*/5);
      ASSERT_EQ(sum, 2L * it + 1);
    }
  });
}

TEST(Split, TwoLayerFftCommunicators) {
  // The paper's 8x8-style layout at 4x2: world of R*T = 8 ranks; "scatter"
  // groups of R ranks with stride T; "pack" groups of T neighboring ranks.
  constexpr int kR = 4;
  constexpr int kT = 2;
  Runtime::run(kR * kT, [&](Comm& world) {
    const int w = world.rank();
    const int group = w % kT;      // task-group id (scatter comm color)
    const int member = w / kT;     // rank inside the task group
    Comm scatter = world.split(group, member);
    ASSERT_EQ(scatter.size(), kR);
    ASSERT_EQ(scatter.rank(), member);

    Comm pack = world.split(/*color=*/w / kT, /*key=*/w % kT);
    ASSERT_EQ(pack.size(), kT);
    ASSERT_EQ(pack.rank(), w % kT);

    // Verify membership: allgather world ranks inside the scatter comm and
    // check the stride-T pattern {group, group+T, ...}.
    std::vector<int> members(kR, -1);
    scatter.allgather_bytes(&w, sizeof(int), members.data());
    for (int i = 0; i < kR; ++i) {
      ASSERT_EQ(members[static_cast<std::size_t>(i)], group + i * kT);
    }

    // And the pack comm holds T consecutive ranks {b*T .. b*T+T-1}.
    std::vector<int> pmembers(kT, -1);
    pack.allgather_bytes(&w, sizeof(int), pmembers.data());
    for (int i = 0; i < kT; ++i) {
      ASSERT_EQ(pmembers[static_cast<std::size_t>(i)], (w / kT) * kT + i);
    }
  });
}

TEST(Split, KeyControlsOrderingAndIdsDiffer) {
  Runtime::run(4, [&](Comm& world) {
    // Reverse ordering via key.
    Comm rev = world.split(0, -world.rank());
    EXPECT_EQ(rev.size(), 4);
    EXPECT_EQ(rev.rank(), 3 - world.rank());
    EXPECT_NE(rev.id(), world.id());

    // Sub-communicators work as full communicators.
    int v = rev.rank();
    int sum = 0;
    rev.allreduce(&v, &sum, 1, ReduceOp::Sum);
    EXPECT_EQ(sum, 6);
  });
}

TEST(Split, SingletonGroups) {
  Runtime::run(3, [&](Comm& world) {
    Comm solo = world.split(world.rank(), 0);
    EXPECT_EQ(solo.size(), 1);
    EXPECT_EQ(solo.rank(), 0);
    solo.barrier();  // must not hang
  });
}

TEST(P2p, MessagesArriveInOrderPerTag) {
  Runtime::run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 20; ++i) {
        comm.send_bytes(1, &i, sizeof(int), /*tag=*/3);
      }
    } else {
      for (int i = 0; i < 20; ++i) {
        int v = -1;
        comm.recv_bytes(0, &v, sizeof(int), /*tag=*/3);
        ASSERT_EQ(v, i);
      }
    }
  });
}

TEST(P2p, TagsKeepStreamsSeparate) {
  Runtime::run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      const int a = 111;
      const int b = 222;
      comm.send_bytes(1, &a, sizeof(int), 1);
      comm.send_bytes(1, &b, sizeof(int), 2);
    } else {
      int b = 0;
      int a = 0;
      comm.recv_bytes(0, &b, sizeof(int), 2);  // receive tag 2 first
      comm.recv_bytes(0, &a, sizeof(int), 1);
      EXPECT_EQ(a, 111);
      EXPECT_EQ(b, 222);
    }
  });
}

TEST(P2p, SizeMismatchThrows) {
  EXPECT_THROW(Runtime::run(2,
                            [&](Comm& comm) {
                              if (comm.rank() == 0) {
                                const long v = 1;
                                comm.send_bytes(1, &v, sizeof(long), 0);
                              } else {
                                int v = 0;
                                comm.recv_bytes(0, &v, sizeof(int), 0);
                              }
                            }),
               fx::core::Error);
}

TEST(Observer, EventsCarryKindCommAndBytes) {
  Runtime::run(2, [&](Comm& comm) {
    std::vector<CommEvent> events;
    comm.set_observer([&](const CommEvent& e) { events.push_back(e); });

    comm.barrier();
    std::vector<int> s(2, comm.rank());
    std::vector<int> r(2);
    comm.alltoall(std::span<const int>(s), std::span<int>(r), /*tag=*/9);

    ASSERT_EQ(events.size(), 2U);
    EXPECT_EQ(events[0].kind, CommOpKind::Barrier);
    EXPECT_EQ(events[1].kind, CommOpKind::Alltoall);
    EXPECT_EQ(events[1].tag, 9);
    EXPECT_EQ(events[1].comm_size, 2);
    EXPECT_EQ(events[1].comm_id, comm.id());
    EXPECT_EQ(events[1].bytes, 2 * sizeof(int));
    EXPECT_GE(events[1].t_end, events[1].t_begin);
    comm.set_observer(nullptr);
    comm.barrier();
    EXPECT_EQ(events.size(), 2U);
  });
}

TEST(Observer, InheritedBySplitCommunicators) {
  Runtime::run(2, [&](Comm& comm) {
    std::atomic<int> count{0};
    comm.set_observer([&](const CommEvent&) { count.fetch_add(1); });
    Comm sub = comm.split(0, 0);  // split itself is observed (+1)
    sub.barrier();                // observed through inheritance (+1)
    EXPECT_EQ(count.load(), 2);
  });
}

TEST(Stress, ManyTagsManyRanksInterleaved) {
  constexpr int kRanks = 8;
  constexpr int kWindows = 5;
  constexpr int kTagsPerWindow = 5;
  Runtime::run(kRanks, [&](Comm& comm) {
    const int r = comm.rank();
    // Window of 5 concurrent collectives per rank, one thread per tag,
    // started in a rank-dependent order: the matcher must pair all of
    // them under heavy interleaving.  (All five are in flight at once, so
    // the blocking rendezvous always makes progress.)
    for (int window = 0; window < kWindows; ++window) {
      const int base = window * kTagsPerWindow;
      std::vector<long> sums(kTagsPerWindow, -1);
      {
        std::vector<std::jthread> issuers;
        issuers.reserve(kTagsPerWindow);
        for (int k = 0; k < kTagsPerWindow; ++k) {
          const int tag = base + (k + r) % kTagsPerWindow;
          issuers.emplace_back([&comm, &sums, tag, base, r] {
            long v = r + tag;
            comm.allreduce(&v, &sums[static_cast<std::size_t>(tag - base)], 1,
                           ReduceOp::Sum, tag);
          });
        }
      }
      for (int k = 0; k < kTagsPerWindow; ++k) {
        const int tag = base + k;
        ASSERT_EQ(sums[static_cast<std::size_t>(k)],
                  static_cast<long>(kRanks) * (kRanks - 1) / 2 +
                      static_cast<long>(kRanks) * tag);
      }
    }
  });
}

}  // namespace
