// Hardening subsystem: fault-injector determinism, watchdog deadlock
// detection, collective-matching validation, and cross-rank error
// propagation (poisoning).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/timer.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/faults.hpp"
#include "simmpi/runtime.hpp"
#include "simmpi/watchdog.hpp"

namespace {

using fx::core::CommError;
using fx::core::DeadlockError;
using fx::core::FaultError;
using fx::mpi::Comm;
using fx::mpi::CommOpKind;
using fx::mpi::FaultInjector;
using fx::mpi::FaultPlan;
using fx::mpi::ReduceOp;
using fx::mpi::RunOptions;
using fx::mpi::Runtime;

/// Quiet-watchdog options for tests that exercise other features.
RunOptions quiet_options() {
  RunOptions opts;
  opts.watchdog.window_ms = 60000.0;
  return opts;
}

/// Corruption decisions of `plan` over a fixed op grid, as one bitmap.
std::vector<bool> corruption_bitmap(const FaultPlan& plan, int nranks,
                                    int nops) {
  FaultInjector injector(plan, nranks);
  std::vector<bool> decisions;
  std::vector<unsigned char> buf(64);
  for (int r = 0; r < nranks; ++r) {
    for (int i = 0; i < nops; ++i) {
      std::memset(buf.data(), 0, buf.size());
      const bool hit =
          injector.maybe_corrupt(r, CommOpKind::Alltoallv, buf.data(),
                                 buf.size());
      decisions.push_back(hit);
      // A hit must actually flip exactly one bit somewhere.
      int flipped = 0;
      for (unsigned char b : buf) flipped += std::popcount(unsigned{b});
      EXPECT_EQ(flipped, hit ? 1 : 0);
    }
  }
  return decisions;
}

TEST(FaultInjector, DecisionsAreDeterministicPerSeed) {
  FaultPlan plan;
  plan.seed = 7;
  plan.corrupt_prob = 0.05;
  const auto first = corruption_bitmap(plan, 4, 200);
  const auto second = corruption_bitmap(plan, 4, 200);
  EXPECT_EQ(first, second);

  const int hits = static_cast<int>(std::count(first.begin(), first.end(),
                                               true));
  EXPECT_GT(hits, 0);     // 800 draws at 5%: ~40 expected
  EXPECT_LT(hits, 400);   // and nowhere near "always"

  FaultPlan other = plan;
  other.seed = 8;
  EXPECT_NE(first, corruption_bitmap(other, 4, 200));
}

TEST(FaultInjector, KindFilterRestrictsInjection) {
  FaultPlan plan;
  plan.corrupt_rank = 0;
  plan.corrupt_op = 0;
  plan.only_kind = static_cast<int>(CommOpKind::Alltoallv);
  FaultInjector injector(plan, 1);
  std::vector<unsigned char> buf(16, 0);
  // Unselected kinds neither corrupt nor advance the corruptible-op index.
  EXPECT_FALSE(
      injector.maybe_corrupt(0, CommOpKind::Bcast, buf.data(), buf.size()));
  EXPECT_TRUE(injector.maybe_corrupt(0, CommOpKind::Alltoallv, buf.data(),
                                     buf.size()));
}

TEST(FaultInjector, KillUnwindsEveryRank) {
  RunOptions opts = quiet_options();
  opts.faults.kill_rank = 1;
  opts.faults.kill_op = 2;
  std::atomic<int> peer_unwinds{0};
  try {
    Runtime::run(4, opts, [&](Comm& comm) {
      try {
        for (int it = 0; it < 10; ++it) {
          double x = comm.rank();
          double sum = 0.0;
          comm.allreduce(&x, &sum, 1, ReduceOp::Sum);
        }
      } catch (const CommError& e) {
        EXPECT_NE(std::string(e.what()).find("rank 1 failed"),
                  std::string::npos);
        peer_unwinds.fetch_add(1);
        throw;
      }
    });
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_NE(std::string(e.what()).find("killed rank 1"), std::string::npos);
  }
  // The three surviving ranks unwound out of their blocked collectives.
  EXPECT_EQ(peer_unwinds.load(), 3);
}

TEST(FaultInjector, StallDelaysTheRun) {
  RunOptions opts = quiet_options();
  opts.faults.stall_rank = 0;
  opts.faults.stall_op = 0;
  opts.faults.stall_ms = 50.0;
  fx::core::WallTimer timer;
  Runtime::run(2, opts, [&](Comm& comm) { comm.barrier(); });
  EXPECT_GE(timer.seconds(), 0.045);
}

TEST(Watchdog, FiresOnMismatchedTagsAndNamesBothSides) {
  RunOptions opts;
  opts.watchdog.window_ms = 250.0;
  fx::core::WallTimer timer;
  try {
    // Different tags match independently, so this is a genuine deadlock the
    // validator cannot flag -- exactly the watchdog's job.
    Runtime::run(2, opts, [&](Comm& comm) {
      int x = 0;
      comm.bcast_bytes(&x, sizeof(x), /*root=*/0,
                       /*tag=*/comm.rank() == 0 ? 1 : 2);
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock detected"), std::string::npos) << what;
    EXPECT_NE(what.find("Bcast(tag 1"), std::string::npos) << what;
    EXPECT_NE(what.find("Bcast(tag 2"), std::string::npos) << what;
    EXPECT_NE(what.find("missing local ranks {1}"), std::string::npos)
        << what;
    EXPECT_NE(what.find("missing local ranks {0}"), std::string::npos)
        << what;
  }
  // Detection within a few windows, not a hung test run.
  EXPECT_LT(timer.seconds(), 10.0);
}

TEST(Validator, FlagsKindMismatchUnderOneTag) {
  try {
    Runtime::run(2, quiet_options(), [&](Comm& comm) {
      double x = 1.0;
      double y = 0.0;
      if (comm.rank() == 0) {
        comm.bcast_bytes(&x, sizeof(x), /*root=*/0, /*tag=*/3);
      } else {
        comm.allreduce(&x, &y, 1, ReduceOp::Sum, /*tag=*/3);
      }
    });
    FAIL() << "expected CommError";
  } catch (const CommError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("collective mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("Bcast(tag 3"), std::string::npos) << what;
    EXPECT_NE(what.find("Allreduce(tag 3"), std::string::npos) << what;
  }
}

TEST(Validator, CanBeDisabled) {
  RunOptions opts;
  opts.validate_collectives = false;
  opts.watchdog.window_ms = 200.0;  // the mismatch now hangs; watchdog saves
  EXPECT_THROW(Runtime::run(2,
                            opts,
                            [&](Comm& comm) {
                              double x = 1.0;
                              double y = 0.0;
                              if (comm.rank() == 0) {
                                comm.bcast_bytes(&x, sizeof(x), 0, /*tag=*/3);
                              } else {
                                comm.allreduce(&x, &y, 1, ReduceOp::Sum,
                                               /*tag=*/3);
                              }
                            }),
               DeadlockError);
}

TEST(Poisoning, RankFailurePropagatesToBlockedPeers) {
  std::atomic<int> unwound{0};
  try {
    Runtime::run(4, quiet_options(), [&](Comm& comm) {
      if (comm.rank() == 0) throw std::runtime_error("boom");
      try {
        comm.barrier();
      } catch (const CommError& e) {
        EXPECT_NE(std::string(e.what()).find("rank 0 failed: boom"),
                  std::string::npos);
        unwound.fetch_add(1);
        throw;
      }
    });
    FAIL() << "expected the originating error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  EXPECT_EQ(unwound.load(), 3);
}

TEST(Poisoning, ReachesSplitCommunicators) {
  try {
    Runtime::run(4, quiet_options(), [&](Comm& world) {
      Comm half = world.split(world.rank() % 2, world.rank());
      if (world.rank() == 3) throw std::runtime_error("split casualty");
      half.barrier();  // rank 1 shares this comm with the dead rank 3
      world.barrier();
    });
    FAIL() << "expected the originating error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "split casualty");
  }
}

TEST(Poisoning, IrecvWaitUnwindsWhenPeerDies) {
  std::atomic<bool> receiver_unwound{false};
  try {
    Runtime::run(2, quiet_options(), [&](Comm& comm) {
      if (comm.rank() == 0) {
        throw std::runtime_error("sender died");
      }
      double payload = 0.0;
      try {
        // The post itself may already see the poisoned context; either the
        // post or the wait must unwind with CommError, never hang.
        auto req = comm.irecv_bytes(0, &payload, sizeof(payload), /*tag=*/5);
        req.wait();
      } catch (const CommError&) {
        receiver_unwound = true;
        throw;
      }
    });
    FAIL() << "expected the originating error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "sender died");
  }
  EXPECT_TRUE(receiver_unwound.load());
}

TEST(Poisoning, IrecvTestThrowsWhenPeerDies) {
  std::atomic<bool> receiver_unwound{false};
  try {
    Runtime::run(2, quiet_options(), [&](Comm& comm) {
      if (comm.rank() == 0) {
        throw std::runtime_error("sender died");
      }
      double payload = 0.0;
      try {
        auto req = comm.irecv_bytes(0, &payload, sizeof(payload), /*tag=*/5);
        for (;;) {
          if (req.test()) break;  // must throw instead of spinning forever
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      } catch (const CommError&) {
        receiver_unwound = true;
        throw;
      }
    });
    FAIL() << "expected the originating error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "sender died");
  }
  EXPECT_TRUE(receiver_unwound.load());
}

TEST(Mismatch, AlltoallvCountMismatchNamesBothSides) {
  try {
    Runtime::run(2, quiet_options(), [&](Comm& comm) {
      // Rank 1 under-declares what it receives from rank 0.
      const std::size_t scounts[2] = {2, 2};
      const std::size_t sdispls[2] = {0, 2};
      const std::size_t rcounts[2] = {2, comm.rank() == 1 ? 1UL : 2UL};
      const std::size_t rdispls[2] = {0, 2};
      const double send[4] = {1, 2, 3, 4};
      double recv[4] = {};
      comm.alltoallv(send, scounts, sdispls, recv, rcounts, rdispls,
                     /*tag=*/0);
    });
    FAIL() << "expected CommError";
  } catch (const CommError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("alltoallv count mismatch"), std::string::npos)
        << what;
    EXPECT_NE(what.find("sends 2 element(s)"), std::string::npos) << what;
    EXPECT_NE(what.find("expects 1 element(s)"), std::string::npos) << what;
  }
}

TEST(RunOptions, FromEnvReadsFaultAndWatchdogVars) {
  ::setenv("FFTX_FAULT_SEED", "42", 1);
  ::setenv("FFTX_FAULT_CORRUPT_PROB", "0.25", 1);
  ::setenv("FFTX_FAULT_KILL_RANK", "3", 1);
  ::setenv("FFTX_WATCHDOG_MS", "1234", 1);
  ::setenv("FFTX_VALIDATE", "0", 1);
  const RunOptions opts = RunOptions::from_env();
  EXPECT_EQ(opts.faults.seed, 42U);
  EXPECT_DOUBLE_EQ(opts.faults.corrupt_prob, 0.25);
  EXPECT_EQ(opts.faults.kill_rank, 3);
  EXPECT_TRUE(opts.faults.any());
  EXPECT_DOUBLE_EQ(opts.watchdog.window_ms, 1234.0);
  EXPECT_FALSE(opts.validate_collectives);
  ::unsetenv("FFTX_FAULT_SEED");
  ::unsetenv("FFTX_FAULT_CORRUPT_PROB");
  ::unsetenv("FFTX_FAULT_KILL_RANK");
  ::unsetenv("FFTX_WATCHDOG_MS");
  ::unsetenv("FFTX_VALIDATE");
  EXPECT_FALSE(RunOptions::from_env().faults.any());
}

TEST(RunOptions, FromEnvReadsFlipVars) {
  ::setenv("FFTX_FAULT_FLIP_RANK", "2", 1);
  ::setenv("FFTX_FAULT_FLIP_OP", "17", 1);
  ::setenv("FFTX_FAULT_FLIP_COUNT", "3", 1);
  ::setenv("FFTX_FAULT_FLIP_PROB", "0.5", 1);
  const FaultPlan plan = FaultPlan::from_env();
  EXPECT_EQ(plan.flip_rank, 2);
  EXPECT_EQ(plan.flip_op, 17U);
  EXPECT_EQ(plan.flip_count, 3);
  EXPECT_DOUBLE_EQ(plan.flip_prob, 0.5);
  EXPECT_TRUE(plan.flips_active());
  EXPECT_TRUE(plan.any());
  ::unsetenv("FFTX_FAULT_FLIP_RANK");
  ::unsetenv("FFTX_FAULT_FLIP_OP");
  ::unsetenv("FFTX_FAULT_FLIP_COUNT");
  ::unsetenv("FFTX_FAULT_FLIP_PROB");
  EXPECT_FALSE(FaultPlan::from_env().flips_active());
}

TEST(FaultEnv, MalformedValuesThrowNamingTheVariable) {
  auto expect_error = [](const char* name, const char* value,
                         const char* needle) {
    ::setenv(name, value, 1);
    try {
      (void)FaultPlan::from_env();
      FAIL() << name << "='" << value << "' was accepted";
    } catch (const fx::core::Error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(name), std::string::npos) << what;
      EXPECT_NE(what.find(needle), std::string::npos) << what;
    }
    ::unsetenv(name);
  };
  expect_error("FFTX_FAULT_FLIP_PROB", "1.5", "probability in [0, 1]");
  expect_error("FFTX_FAULT_FLIP_PROB", "banana", "a finite number");
  expect_error("FFTX_FAULT_FLIP_RANK", "2x", "an integer");
  expect_error("FFTX_FAULT_FLIP_OP", "-3", "an unsigned integer");
  expect_error("FFTX_FAULT_SEED", "0xg", "an unsigned integer");
  expect_error("FFTX_FAULT_KIND", "99", "CommOpKind integer");
}

TEST(FaultEnv, UnknownVariableThrowsListingAcceptedOnes) {
  // A typo'd FFTX_FAULT_* variable must not silently run fault-free.
  ::setenv("FFTX_FAULT_FLIP_RNAK", "0", 1);
  try {
    (void)FaultPlan::from_env();
    FAIL() << "unknown FFTX_FAULT_FLIP_RNAK was accepted";
  } catch (const fx::core::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("FFTX_FAULT_FLIP_RNAK"), std::string::npos) << what;
    EXPECT_NE(what.find("accepted variables"), std::string::npos) << what;
    EXPECT_NE(what.find("FFTX_FAULT_FLIP_RANK"), std::string::npos) << what;
  }
  ::unsetenv("FFTX_FAULT_FLIP_RNAK");
  EXPECT_FALSE(FaultPlan::from_env().any());
}

TEST(FaultInjector, FlipsAreDeterministicAndSingleBit) {
  FaultPlan plan;
  plan.seed = 7;
  plan.flip_rank = 1;
  plan.flip_op = 3;
  plan.flip_count = 2;

  auto run = [&] {
    FaultInjector injector(plan, /*nranks=*/2);
    std::vector<std::pair<int, std::vector<double>>> hits;
    for (int op = 0; op < 8; ++op) {
      for (int r = 0; r < 2; ++r) {
        std::vector<double> buf(16, 1.0);
        if (injector.maybe_flip(r, buf.data(), buf.size() * sizeof(double))) {
          hits.emplace_back(r, buf);
        }
      }
    }
    EXPECT_EQ(injector.flips(), 2U);
    return hits;
  };

  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);  // same seed, same opportunity grid -> same bits
  ASSERT_EQ(a.size(), 2U);
  for (const auto& [rank, buf] : a) {
    EXPECT_EQ(rank, plan.flip_rank);
    int changed = 0;
    for (double v : buf) changed += v != 1.0;
    EXPECT_EQ(changed, 1) << "a flip must corrupt exactly one word";
  }
}

TEST(FaultInjector, FlipOpportunityIndexAdvancesPastEmptyBuffers) {
  // Opportunity counting must be buffer-size independent, or FLIP_OP
  // becomes irreproducible across configurations where some stages see
  // empty slices on some ranks.
  FaultPlan plan;
  plan.flip_rank = 0;
  plan.flip_op = 2;

  FaultInjector injector(plan, 1);
  double word = 1.0;
  EXPECT_FALSE(injector.maybe_flip(0, &word, sizeof word));   // op 0
  EXPECT_FALSE(injector.maybe_flip(0, nullptr, 0));           // op 1 (empty)
  EXPECT_TRUE(injector.maybe_flip(0, &word, sizeof word));    // op 2 hits
  EXPECT_NE(word, 1.0);
}

}  // namespace
