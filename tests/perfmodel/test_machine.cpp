// Machine presets and the contention ingredients' qualitative effects.
#include <gtest/gtest.h>

#include "perfmodel/simulator.hpp"
#include "trace/analysis.hpp"

namespace {

using fx::fftx::Descriptor;
using fx::fftx::PipelineMode;
using fx::model::build_program;
using fx::model::MachineConfig;
using fx::model::ProgramConfig;
using fx::model::SimConfig;
using fx::model::simulate;
using fx::pw::Cell;

TEST(Machine, KnlPresetMatchesPaperTestbed) {
  const auto m = MachineConfig::knl();
  EXPECT_EQ(m.cores, 68);
  EXPECT_EQ(m.smt, 4);
  EXPECT_DOUBLE_EQ(m.freq_ghz, 1.4);
  // Fig. 3 phase ordering: psi prep lowest, FFT-XY highest.
  EXPECT_LT(m.base_ipc_of(fx::trace::PhaseKind::PsiPrep),
            m.base_ipc_of(fx::trace::PhaseKind::FftZ));
  EXPECT_LT(m.base_ipc_of(fx::trace::PhaseKind::FftZ),
            m.base_ipc_of(fx::trace::PhaseKind::FftXy));
}

TEST(Machine, XeonPresetIsFasterPerCore) {
  const auto knl = MachineConfig::knl();
  const auto xeon = MachineConfig::xeon();
  EXPECT_LT(xeon.cores, knl.cores);
  EXPECT_GT(xeon.freq_ghz, knl.freq_ghz);
  EXPECT_GT(xeon.base_ipc_of(fx::trace::PhaseKind::FftXy),
            knl.base_ipc_of(fx::trace::PhaseKind::FftXy));
}

double runtime_on(const MachineConfig& m, int nranks, PipelineMode mode,
                  int threads, int ntg) {
  const Descriptor desc(Cell{10.0}, 12.0, nranks, ntg);
  ProgramConfig pcfg;
  pcfg.mode = mode;
  pcfg.num_bands = 16;
  const auto bundle = build_program(desc, pcfg);
  SimConfig scfg;
  scfg.mode = mode;
  scfg.threads_per_rank = threads;
  return simulate(bundle, m, scfg, nullptr).makespan;
}

TEST(Machine, FewXeonCoresBeatFewKnlCores) {
  // Same layout, wide cores win when contention is irrelevant.
  const double knl = runtime_on(MachineConfig::knl(), 4, PipelineMode::Original,
                                1, 1);
  const double xeon = runtime_on(MachineConfig::xeon(), 4,
                                 PipelineMode::Original, 1, 1);
  EXPECT_LT(xeon, knl);
}

TEST(Machine, SamePhaseContentionPenalizesSynchronizedRuns) {
  // With the same-phase term switched off, the original's full-node run
  // speeds up more than the de-synchronized task run does.
  auto with = MachineConfig::knl();
  auto without = MachineConfig::knl();
  without.same_phase_contention = 0.0;

  const double orig_with = runtime_on(with, 32, PipelineMode::Original, 1, 8);
  const double orig_without =
      runtime_on(without, 32, PipelineMode::Original, 1, 8);
  const double task_with = runtime_on(with, 4, PipelineMode::TaskPerFft, 8, 1);
  const double task_without =
      runtime_on(without, 4, PipelineMode::TaskPerFft, 8, 1);

  const double orig_gain = orig_with / orig_without;
  const double task_gain = task_with / task_without;
  EXPECT_GT(orig_gain, 1.0);  // removing contention helps the original...
  EXPECT_GT(orig_gain, task_gain - 0.02);  // ...at least as much as the task run
}

TEST(Machine, NoiseLowersLoadBalance) {
  // The stick/plane distribution is not perfectly even, so load balance is
  // below 1 even without noise; adding speed noise must lower it further.
  auto quiet = MachineConfig::knl();
  quiet.noise_amp = 0.0;
  auto noisy = MachineConfig::knl();
  noisy.noise_amp = 0.08;

  auto lb = [&](const MachineConfig& m) {
    const Descriptor desc(Cell{10.0}, 12.0, 8, 1);
    ProgramConfig pcfg;
    pcfg.num_bands = 16;
    const auto bundle = build_program(desc, pcfg);
    SimConfig scfg;
    fx::trace::Tracer tracer(8);
    simulate(bundle, m, scfg, &tracer);
    return fx::trace::analyze_efficiency(tracer, m.freq_ghz).load_balance;
  };
  const double q = lb(quiet);
  const double n = lb(noisy);
  EXPECT_GT(q, 0.5);
  EXPECT_LE(q, 1.0);
  EXPECT_LT(n, q);
}

}  // namespace
