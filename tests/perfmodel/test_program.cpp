// Virtual program construction invariants.
#include "perfmodel/program.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/error.hpp"

namespace {

using fx::fftx::Descriptor;
using fx::fftx::PipelineMode;
using fx::model::build_program;
using fx::model::ProgramConfig;
using fx::model::Step;
using fx::pw::Cell;

ProgramConfig config(PipelineMode mode, int bands = 8) {
  ProgramConfig cfg;
  cfg.mode = mode;
  cfg.num_bands = bands;
  return cfg;
}

TEST(Program, ShapeMatchesDescriptor) {
  const Descriptor desc(Cell{8.0}, 8.0, 4, 2);
  const auto bundle = build_program(desc, config(PipelineMode::Original));
  EXPECT_EQ(bundle.programs.size(), 4U);
  EXPECT_EQ(bundle.ntg, 2);
  // R + T communicator groups.
  EXPECT_EQ(bundle.comm_members.size(), 2U + 2U);
  for (const auto& prog : bundle.programs) {
    EXPECT_EQ(prog.size(), 4U);  // 8 bands / ntg 2
  }
}

TEST(Program, CommGroupsMatchTwoLayerScheme) {
  const Descriptor desc(Cell{8.0}, 8.0, 8, 4);  // R=2, T=4
  const auto bundle = build_program(desc, config(PipelineMode::Original));
  // Pack comm b: neighboring ranks {b*T .. b*T+T-1}.
  EXPECT_EQ(bundle.comm_members[0], (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(bundle.comm_members[1], (std::vector<int>{4, 5, 6, 7}));
  // Scatter comm g: alternating ranks {g, g+T, ...}.
  EXPECT_EQ(bundle.comm_members[2], (std::vector<int>{0, 4}));
  EXPECT_EQ(bundle.comm_members[3], (std::vector<int>{1, 5}));
  EXPECT_EQ(bundle.comm_members[5], (std::vector<int>{3, 7}));
}

TEST(Program, EveryMemberCallsEachCollectiveInstance) {
  const Descriptor desc(Cell{8.0}, 8.0, 4, 2);
  const auto bundle = build_program(desc, config(PipelineMode::Original));
  // Count collective calls per (group, rank).
  std::map<std::pair<int, int>, int> calls;
  for (std::size_t w = 0; w < bundle.programs.size(); ++w) {
    for (const auto& chain : bundle.programs[w]) {
      for (const auto& s : chain) {
        if (s.kind == Step::Kind::Collective) {
          ++calls[{s.comm_group, static_cast<int>(w)}];
        }
      }
    }
  }
  for (std::size_t grp = 0; grp < bundle.comm_members.size(); ++grp) {
    int expected = -1;
    for (int member : bundle.comm_members[grp]) {
      const auto it = calls.find({static_cast<int>(grp), member});
      ASSERT_NE(it, calls.end()) << "group " << grp << " member " << member;
      if (expected < 0) expected = it->second;
      EXPECT_EQ(it->second, expected) << "unbalanced collective calls";
    }
  }
}

TEST(Program, ComputeWorkMatchesPhaseCostModel) {
  const Descriptor desc(Cell{8.0}, 8.0, 2, 1);
  const auto bundle = build_program(desc, config(PipelineMode::Original));
  // FftZ steps carry the cost of nst*nz points of length-nz transforms.
  const int w = 0;
  const std::size_t nst = desc.nsticks_group(0);
  const std::size_t nz = desc.dims().nz;
  const auto want = fx::trace::fft_cost(nst * nz, nz);
  int found = 0;
  for (const auto& s : bundle.programs[w][0]) {
    if (s.kind == Step::Kind::Compute && s.phase == fx::trace::PhaseKind::FftZ) {
      EXPECT_DOUBLE_EQ(s.instructions, want.instructions);
      EXPECT_DOUBLE_EQ(s.bytes, want.bytes);
      ++found;
    }
  }
  EXPECT_EQ(found, 2);  // forward and backward
}

TEST(Program, ParallelizableOnlyInFanoutModes) {
  const Descriptor desc(Cell{8.0}, 8.0, 2, 1);
  for (const auto mode : {PipelineMode::Original, PipelineMode::TaskPerFft}) {
    const auto bundle = build_program(desc, config(mode));
    for (const auto& s : bundle.programs[0][0]) {
      EXPECT_FALSE(s.parallelizable) << to_string(mode);
    }
  }
  for (const auto mode :
       {PipelineMode::TaskPerStep, PipelineMode::Combined}) {
    const auto bundle = build_program(desc, config(mode));
    bool any = false;
    for (const auto& s : bundle.programs[0][0]) any = any || s.parallelizable;
    EXPECT_TRUE(any) << to_string(mode);
  }
}

TEST(Program, VofrPresenceFollowsConfig) {
  const Descriptor desc(Cell{8.0}, 8.0, 1, 1);
  auto cfg = config(PipelineMode::Original);
  cfg.apply_potential = false;
  const auto without = build_program(desc, cfg);
  cfg.apply_potential = true;
  const auto with = build_program(desc, cfg);
  EXPECT_EQ(with.programs[0][0].size(), without.programs[0][0].size() + 1);
}

TEST(Program, RejectsBadBandCount) {
  const Descriptor desc(Cell{8.0}, 8.0, 4, 2);
  EXPECT_THROW(build_program(desc, config(PipelineMode::Original, 7)),
               fx::core::Error);
}

}  // namespace
