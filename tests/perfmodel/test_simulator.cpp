// Discrete-event simulator: completion, determinism, work conservation,
// and the qualitative machine-model effects the paper depends on.
#include "perfmodel/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "trace/analysis.hpp"

namespace {

using fx::fftx::Descriptor;
using fx::fftx::PipelineMode;
using fx::model::build_program;
using fx::model::MachineConfig;
using fx::model::ProgramConfig;
using fx::model::SimConfig;
using fx::model::simulate;
using fx::pw::Cell;

ProgramConfig pcfg(PipelineMode mode, int bands) {
  ProgramConfig c;
  c.mode = mode;
  c.num_bands = bands;
  return c;
}

SimConfig scfg(PipelineMode mode, int threads) {
  SimConfig c;
  c.mode = mode;
  c.threads_per_rank = threads;
  return c;
}

TEST(Simulator, CompletesAndEmitsConsistentTrace) {
  const Descriptor desc(Cell{8.0}, 8.0, 4, 2);
  const auto bundle = build_program(desc, pcfg(PipelineMode::Original, 8));
  fx::trace::Tracer tracer(4);
  const auto machine = MachineConfig::knl();
  const auto res =
      simulate(bundle, machine, scfg(PipelineMode::Original, 1), &tracer);
  EXPECT_GT(res.makespan, 0.0);
  EXPECT_GT(res.events, 0U);

  // Instruction conservation: trace total == program total.
  double program_instr = 0.0;
  for (const auto& prog : bundle.programs) {
    for (const auto& chain : prog) {
      for (const auto& s : chain) program_instr += s.instructions;
    }
  }
  double trace_instr = 0.0;
  for (const auto& e : tracer.compute_events()) trace_instr += e.instructions;
  EXPECT_NEAR(trace_instr, program_instr, 1e-6 * program_instr);

  // All compute events inside the makespan and non-negative.
  for (const auto& e : tracer.compute_events()) {
    EXPECT_GE(e.t_begin, 0.0);
    EXPECT_LE(e.t_end, res.makespan + 1e-9);
    EXPECT_LE(e.t_begin, e.t_end);
  }
  // Each comm instance finishes no earlier than every participant arrived.
  for (const auto& e : tracer.comm_events()) {
    EXPECT_LE(e.t_begin, e.t_end);
  }
}

TEST(Simulator, Deterministic) {
  const Descriptor desc(Cell{8.0}, 8.0, 4, 1);
  const auto bundle = build_program(desc, pcfg(PipelineMode::TaskPerFft, 8));
  const auto machine = MachineConfig::knl();
  const auto a =
      simulate(bundle, machine, scfg(PipelineMode::TaskPerFft, 4), nullptr);
  const auto b =
      simulate(bundle, machine, scfg(PipelineMode::TaskPerFft, 4), nullptr);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events, b.events);
}

TEST(Simulator, MoreBandwidthNeverSlower) {
  const Descriptor desc(Cell{10.0}, 12.0, 8, 1);
  const auto bundle = build_program(desc, pcfg(PipelineMode::Original, 8));
  auto fast = MachineConfig::knl();
  auto slow = MachineConfig::knl();
  slow.mem_bw_gbps = 20.0;
  const auto t_fast =
      simulate(bundle, fast, scfg(PipelineMode::Original, 1), nullptr);
  const auto t_slow =
      simulate(bundle, slow, scfg(PipelineMode::Original, 1), nullptr);
  EXPECT_LE(t_fast.makespan, t_slow.makespan * (1.0 + 1e-9));
}

TEST(Simulator, HigherLatencyIsSlower) {
  const Descriptor desc(Cell{10.0}, 12.0, 8, 2);
  const auto bundle = build_program(desc, pcfg(PipelineMode::Original, 8));
  auto base = MachineConfig::knl();
  auto lag = MachineConfig::knl();
  lag.alpha_us = 500.0;
  const auto t0 =
      simulate(bundle, base, scfg(PipelineMode::Original, 1), nullptr);
  const auto t1 =
      simulate(bundle, lag, scfg(PipelineMode::Original, 1), nullptr);
  EXPECT_LT(t0.makespan, t1.makespan);
}

TEST(Simulator, OversubscriptionLowersIpc) {
  // Same per-rank work run with threads <= cores and threads >> cores.
  const Descriptor desc(Cell{10.0}, 12.0, 4, 1);
  const auto bundle = build_program(desc, pcfg(PipelineMode::TaskPerFft, 8));
  auto tiny = MachineConfig::knl();
  tiny.cores = 2;  // 4 ranks x 4 workers = 16 threads on 2 cores
  tiny.smt = 8;
  fx::trace::Tracer crowded(4);
  simulate(bundle, tiny, scfg(PipelineMode::TaskPerFft, 4), &crowded);
  auto roomy = MachineConfig::knl();  // 68 cores: no sharing
  fx::trace::Tracer free_run(4);
  simulate(bundle, roomy, scfg(PipelineMode::TaskPerFft, 4), &free_run);

  const auto s_crowded =
      fx::trace::analyze_efficiency(crowded, tiny.freq_ghz);
  const auto s_free =
      fx::trace::analyze_efficiency(free_run, roomy.freq_ghz);
  EXPECT_LT(s_crowded.avg_ipc, 0.6 * s_free.avg_ipc);
}

TEST(Simulator, ContentionEmergesWithManyRanks) {
  // Average IPC decreases as the node fills -- the Table I effect.
  const auto machine = MachineConfig::knl();
  auto ipc_at = [&](int nranks) {
    const Descriptor desc(Cell{14.0}, 20.0, nranks, 1);
    const auto bundle =
        build_program(desc, pcfg(PipelineMode::Original, 8));
    fx::trace::Tracer tracer(nranks);
    simulate(bundle, machine, scfg(PipelineMode::Original, 1), &tracer);
    return fx::trace::analyze_efficiency(tracer, machine.freq_ghz).avg_ipc;
  };
  const double ipc4 = ipc_at(4);
  const double ipc64 = ipc_at(64);
  EXPECT_LT(ipc64, ipc4);
}

TEST(Simulator, TracerRowsMatchThreads) {
  const Descriptor desc(Cell{8.0}, 8.0, 2, 1);
  const auto bundle = build_program(desc, pcfg(PipelineMode::TaskPerFft, 8));
  fx::trace::Tracer tracer(2);
  simulate(bundle, MachineConfig::knl(), scfg(PipelineMode::TaskPerFft, 4),
           &tracer);
  const auto s = fx::trace::analyze_efficiency(tracer, 1.4);
  EXPECT_GT(s.rows, 2);      // multiple workers show up as rows
  EXPECT_LE(s.rows, 2 * 4);  // bounded by ranks x workers
}

TEST(Simulator, AllModesCompleteOnOneConfig) {
  const Descriptor desc1(Cell{8.0}, 8.0, 4, 1);
  const Descriptor desc2(Cell{8.0}, 8.0, 4, 2);
  const auto machine = MachineConfig::knl();
  for (const auto mode :
       {PipelineMode::Original, PipelineMode::TaskPerStep,
        PipelineMode::TaskPerFft, PipelineMode::Combined}) {
    const Descriptor& desc = mode == PipelineMode::Original ? desc2 : desc1;
    const auto bundle = build_program(desc, pcfg(mode, 8));
    const int workers = mode == PipelineMode::Original ? 1 : 3;
    const auto res = simulate(bundle, machine, scfg(mode, workers), nullptr);
    EXPECT_GT(res.makespan, 0.0) << to_string(mode);
  }
}

}  // namespace
