// The two backends must execute the same logical program: the real
// pipeline's trace and the virtual program builder must agree on
// instruction totals per phase kind and on communication payloads.  This
// is what makes the model benches a faithful stand-in for the real kernel.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "fftx/pipeline.hpp"
#include "perfmodel/program.hpp"
#include "simmpi/runtime.hpp"

namespace {

using fx::fftx::Descriptor;
using fx::fftx::PipelineMode;
using fx::pw::Cell;
using fx::trace::PhaseKind;

struct Totals {
  std::map<PhaseKind, double> instructions;
  double comm_bytes = 0.0;
  std::size_t collective_calls = 0;
};

Totals from_real_run(int nranks, int ntg, PipelineMode mode, int threads,
                     int bands) {
  auto desc =
      std::make_shared<const Descriptor>(Cell{8.0}, 8.0, nranks, ntg);
  fx::trace::Tracer tracer(nranks);
  fx::mpi::Runtime::run(nranks, [&](fx::mpi::Comm& world) {
    fx::fftx::PipelineConfig cfg;
    cfg.num_bands = bands;
    cfg.mode = mode;
    cfg.nthreads = threads;
    fx::fftx::BandFftPipeline pipe(world, desc, cfg, &tracer);
    pipe.initialize_bands();
    pipe.run();
  });
  Totals t;
  for (const auto& e : tracer.compute_events()) {
    t.instructions[e.phase] += e.instructions;
  }
  for (const auto& e : tracer.comm_events()) {
    if (e.kind == fx::mpi::CommOpKind::Alltoallv) {
      t.comm_bytes += static_cast<double>(e.bytes);
      ++t.collective_calls;
    }
  }
  return t;
}

Totals from_program(int nranks, int ntg, PipelineMode mode, int bands) {
  const Descriptor desc(Cell{8.0}, 8.0, nranks, ntg);
  fx::model::ProgramConfig pcfg;
  pcfg.mode = mode;
  pcfg.num_bands = bands;
  const auto bundle = fx::model::build_program(desc, pcfg);
  Totals t;
  for (const auto& prog : bundle.programs) {
    for (const auto& chain : prog) {
      for (const auto& s : chain) {
        if (s.kind == fx::model::Step::Kind::Compute) {
          t.instructions[s.phase] += s.instructions;
        } else {
          t.comm_bytes += static_cast<double>(s.comm_bytes);
          ++t.collective_calls;
        }
      }
    }
  }
  return t;
}

class BackendConsistency
    : public ::testing::TestWithParam<std::tuple<int, int, PipelineMode>> {};

TEST_P(BackendConsistency, InstructionAndByteTotalsAgree) {
  const auto [nranks, ntg, mode] = GetParam();
  const int threads = mode == PipelineMode::Original ? 1 : 3;
  constexpr int kBands = 8;

  const Totals real = from_real_run(nranks, ntg, mode, threads, kBands);
  const Totals model = from_program(nranks, ntg, mode, kBands);

  for (const auto& [phase, instr] : model.instructions) {
    const auto it = real.instructions.find(phase);
    ASSERT_NE(it, real.instructions.end())
        << "phase missing in real trace: " << to_string(phase);
    EXPECT_NEAR(it->second, instr, 1e-6 * (instr + 1.0))
        << to_string(phase);
  }
  EXPECT_EQ(real.instructions.size(), model.instructions.size());
  EXPECT_NEAR(real.comm_bytes, model.comm_bytes,
              1e-9 * (model.comm_bytes + 1.0));
  EXPECT_EQ(real.collective_calls, model.collective_calls);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BackendConsistency,
    ::testing::Values(std::tuple{2, 2, PipelineMode::Original},
                      std::tuple{4, 2, PipelineMode::Original},
                      std::tuple{4, 4, PipelineMode::Original},
                      std::tuple{2, 1, PipelineMode::TaskPerFft},
                      std::tuple{4, 1, PipelineMode::TaskPerFft},
                      std::tuple{2, 1, PipelineMode::TaskPerStep},
                      std::tuple{2, 1, PipelineMode::Combined}));

}  // namespace
