// taskloop semantics, randomized dependency-graph stress validated against
// sequential execution, and task+simmpi integration (tagged collectives
// issued from dynamically scheduled tasks).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <map>
#include <numeric>
#include <vector>

#include "core/rng.hpp"
#include "simmpi/runtime.hpp"
#include "tasking/runtime.hpp"

namespace {

using fx::core::Rng;
using fx::task::SchedulerPolicy;
using fx::task::TaskRuntime;

TEST(Taskloop, CoversEveryIterationExactlyOnce) {
  TaskRuntime rt(4);
  constexpr std::size_t kN = 1003;
  std::vector<std::atomic<int>> hits(kN);
  rt.taskloop("loop", 0, kN, 10, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "i=" << i;
  }
}

class GrainSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GrainSweep, AllGrainsCoverRange) {
  const std::size_t grain = GetParam();
  TaskRuntime rt(3);
  constexpr std::size_t kN = 257;
  std::vector<std::atomic<int>> hits(kN);
  rt.taskloop("g", 0, kN, grain, [&](std::size_t lo, std::size_t hi) {
    ASSERT_LE(hi - lo, grain);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  int total = 0;
  for (auto& h : hits) {
    ASSERT_EQ(h.load(), 1);
    total += h.load();
  }
  EXPECT_EQ(total, static_cast<int>(kN));
}

// Grain sizes include the paper's choices (10 for cft_2xy, 200 for cft_2z).
INSTANTIATE_TEST_SUITE_P(Grains, GrainSweep,
                         ::testing::Values(1, 3, 10, 64, 200, 257, 1000));

TEST(Taskloop, EmptyRangeIsNoop) {
  TaskRuntime rt(2);
  bool ran = false;
  rt.taskloop("e", 5, 5, 10, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(rt.tasks_executed(), 0U);
}

TEST(Taskloop, NestedInsideTask) {
  // The paper's strategy 1: a step task internally task-loops its FFT work.
  TaskRuntime rt(4);
  constexpr std::size_t kN = 100;
  std::vector<std::atomic<int>> hits(kN);
  std::atomic<bool> loop_done_inside{false};
  rt.submit("step", [&] {
    rt.taskloop("inner", 0, kN, 7, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
    });
    // taskloop must have fully completed before the step task continues.
    bool all = true;
    for (auto& h : hits) all = all && h.load() == 1;
    loop_done_inside.store(all);
  });
  rt.taskwait();
  EXPECT_TRUE(loop_done_inside.load());
}

TEST(Taskloop, TwoLevelNesting) {
  TaskRuntime rt(4);
  std::atomic<long> sum{0};
  rt.submit("outer", [&] {
    rt.taskloop("mid", 0, 4, 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        rt.taskloop("leaf", 0, 10, 3, [&](std::size_t a, std::size_t b) {
          sum.fetch_add(static_cast<long>(b - a));
        });
      }
    });
  });
  rt.taskwait();
  EXPECT_EQ(sum.load(), 40);
}

TEST(Taskloop, RejectsZeroGrain) {
  TaskRuntime rt(1);
  EXPECT_THROW(
      rt.taskloop("bad", 0, 10, 0, [](std::size_t, std::size_t) {}),
      fx::core::Error);
}

/// Randomized stress: build a random DAG over K virtual "objects"; tasks
/// append (task id) to a per-object log.  Execute once sequentially (1
/// worker) and once with 8 workers; per-object write orders must match, as
/// dependencies fully determine them.
TEST(Stress, RandomGraphMatchesSequentialExecution) {
  constexpr int kObjects = 12;
  constexpr int kTasks = 300;

  struct Obj {
    alignas(64) long payload = 0;
  };

  auto run = [&](int workers, std::uint64_t seed) {
    std::vector<Obj> objects(kObjects);
    std::vector<std::vector<int>> writer_log(kObjects);
    std::mutex log_mu;
    Rng rng(seed);
    TaskRuntime rt(workers);
    for (int t = 0; t < kTasks; ++t) {
      // 1-3 clauses per task over distinct objects.
      const int nclauses = 1 + static_cast<int>(rng.next_below(3));
      std::vector<fx::task::Dep> deps;
      std::vector<int> targets;
      for (int c = 0; c < nclauses; ++c) {
        const int o = static_cast<int>(rng.next_below(kObjects));
        if (std::find(targets.begin(), targets.end(), o) != targets.end()) {
          continue;
        }
        targets.push_back(o);
        const auto mode = static_cast<fx::task::DepMode>(rng.next_below(3));
        deps.push_back({&objects[static_cast<std::size_t>(o)], sizeof(Obj),
                        mode});
      }
      std::vector<int> writes;
      for (std::size_t c = 0; c < deps.size(); ++c) {
        if (deps[c].mode != fx::task::DepMode::In) {
          writes.push_back(targets[c]);
        }
      }
      rt.submit("t", std::move(deps), [&, writes, t] {
        std::lock_guard lock(log_mu);
        for (int o : writes) {
          writer_log[static_cast<std::size_t>(o)].push_back(t);
        }
      });
    }
    rt.taskwait();
    return writer_log;
  };

  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auto sequential = run(1, seed);
    const auto parallel = run(8, seed);
    for (int o = 0; o < kObjects; ++o) {
      EXPECT_EQ(parallel[static_cast<std::size_t>(o)],
                sequential[static_cast<std::size_t>(o)])
          << "object " << o << " seed " << seed;
    }
  }
}

/// Integration: tasks on every rank issue tagged collectives in dynamic
/// order.  FIFO dispatch + tags must complete without deadlock and with
/// correct payloads -- the heart of the task-per-FFT pipeline.
TEST(Integration, TasksIssueTaggedCollectivesAcrossRanks) {
  constexpr int kRanks = 4;
  constexpr int kWorkersPerRank = 3;
  constexpr int kBands = 12;

  fx::mpi::Runtime::run(kRanks, [&](fx::mpi::Comm& comm) {
    TaskRuntime rt(kWorkersPerRank);
    std::vector<std::vector<int>> results(
        kBands, std::vector<int>(kRanks, -1));
    for (int band = 0; band < kBands; ++band) {
      rt.submit("band", [&, band] {
        std::vector<int> send(kRanks, 1000 * band + comm.rank());
        comm.alltoall(std::span<const int>(send),
                      std::span<int>(results[static_cast<std::size_t>(band)]),
                      /*tag=*/band);
      });
    }
    rt.taskwait();
    for (int band = 0; band < kBands; ++band) {
      for (int p = 0; p < kRanks; ++p) {
        ASSERT_EQ(results[static_cast<std::size_t>(band)]
                         [static_cast<std::size_t>(p)],
                  1000 * band + p)
            << "band " << band << " peer " << p;
      }
    }
  });
}

TEST(Integration, ManyMoreBandsThanWorkers) {
  // Sliding-window schedule: 32 bands over 2 workers per rank must drain.
  constexpr int kRanks = 3;
  constexpr int kBands = 32;
  fx::mpi::Runtime::run(kRanks, [&](fx::mpi::Comm& comm) {
    TaskRuntime rt(2);
    std::atomic<int> completed{0};
    for (int band = 0; band < kBands; ++band) {
      rt.submit("band", [&, band] {
        long v = comm.rank() + band;
        long sum = 0;
        comm.allreduce(&v, &sum, 1, fx::mpi::ReduceOp::Sum, band);
        ASSERT_EQ(sum, 3L * band + 3);
        completed.fetch_add(1);
      });
    }
    rt.taskwait();
    EXPECT_EQ(completed.load(), kBands);
  });
}

}  // namespace
