// Task-failure propagation: exceptions thrown inside task bodies must
// surface at the join points (taskwait, taskloop) wrapped in
// core::TaskError carrying the failing task's label.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>

#include "core/error.hpp"
#include "tasking/runtime.hpp"

namespace {

using fx::core::TaskError;
using fx::task::TaskRuntime;

TEST(TaskErrors, TaskwaitRethrowsWithLabel) {
  TaskRuntime rt(2);
  rt.submit("healthy", [] {});
  rt.submit("explode", [] { throw std::runtime_error("kaboom"); });
  try {
    rt.taskwait();
    FAIL() << "expected TaskError";
  } catch (const TaskError& e) {
    EXPECT_EQ(e.label(), "explode");
    EXPECT_STREQ(e.what(), "task 'explode' failed: kaboom");
  }
}

TEST(TaskErrors, FirstFailureWinsAndRuntimeStaysUsable) {
  TaskRuntime rt(1);  // one worker serializes, so "first" is deterministic
  rt.submit("first-bad", [] { throw std::runtime_error("one"); });
  rt.submit("second-bad", [] { throw std::runtime_error("two"); });
  try {
    rt.taskwait();
    FAIL() << "expected TaskError";
  } catch (const TaskError& e) {
    EXPECT_EQ(e.label(), "first-bad");
  }
  // The error slot was consumed; the runtime accepts and runs new work.
  std::atomic<int> ran{0};
  rt.submit("after", [&] { ran.fetch_add(1); });
  rt.taskwait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(TaskErrors, TaskloopJoinRethrowsFailingChunk) {
  TaskRuntime rt(2);
  std::atomic<int> chunks_run{0};
  try {
    rt.taskloop("chunk", 0, 8, 1, [&](std::size_t lo, std::size_t) {
      chunks_run.fetch_add(1);
      if (lo == 3) throw std::runtime_error("chunk failure");
    });
    FAIL() << "expected TaskError";
  } catch (const TaskError& e) {
    EXPECT_EQ(e.label(), "chunk#3");
    EXPECT_NE(std::string(e.what()).find("chunk failure"),
              std::string::npos);
  }
  EXPECT_EQ(chunks_run.load(), 8);  // failure does not cancel siblings
  rt.taskwait();                    // drained; must not rethrow again
}

TEST(TaskErrors, NestedTaskloopFailureKeepsChunkLabel) {
  TaskRuntime rt(2);
  rt.submit("outer", [&] {
    rt.taskloop("inner", 0, 4, 1, [](std::size_t lo, std::size_t) {
      if (lo == 2) throw std::runtime_error("deep failure");
    });
  });
  try {
    rt.taskwait();
    FAIL() << "expected TaskError";
  } catch (const TaskError& e) {
    // The chunk's TaskError passes through the outer task unchanged, so
    // the report names the actual failing task, not just its parent.
    EXPECT_EQ(e.label(), "inner#2");
    EXPECT_NE(std::string(e.what()).find("deep failure"), std::string::npos);
  }
}

}  // namespace
