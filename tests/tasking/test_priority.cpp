// Priority scheduling policy.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "tasking/runtime.hpp"

namespace {

using fx::task::SchedulerPolicy;
using fx::task::TaskRuntime;

TEST(Priority, HigherPriorityRunsFirst) {
  TaskRuntime rt(1, SchedulerPolicy::Priority);
  std::vector<int> order;
  // Block the single worker so the queue fills up before dispatch.
  std::atomic<bool> release{false};
  rt.submit("gate", [&] {
    while (!release.load()) std::this_thread::yield();
  });
  rt.submit("low", [&] { order.push_back(1); }, /*priority=*/1);
  rt.submit("mid", [&] { order.push_back(5); }, /*priority=*/5);
  rt.submit("high", [&] { order.push_back(9); }, /*priority=*/9);
  rt.submit("low2", [&] { order.push_back(0); }, /*priority=*/0);
  release.store(true);
  rt.taskwait();
  EXPECT_EQ(order, (std::vector<int>{9, 5, 1, 0}));
}

TEST(Priority, FifoAmongEqualPriorities) {
  TaskRuntime rt(1, SchedulerPolicy::Priority);
  std::vector<int> order;
  std::atomic<bool> release{false};
  rt.submit("gate", [&] {
    while (!release.load()) std::this_thread::yield();
  });
  for (int i = 0; i < 6; ++i) {
    rt.submit("same", [&order, i] { order.push_back(i); }, /*priority=*/3);
  }
  release.store(true);
  rt.taskwait();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(Priority, DependenciesStillDominate) {
  // A high-priority task must still wait for its low-priority predecessor.
  TaskRuntime rt(2, SchedulerPolicy::Priority);
  int value = 0;
  rt.submit("producer", {fx::task::out(value)}, [&] { value = 7; },
            /*priority=*/0);
  int seen = -1;
  rt.submit("consumer", {fx::task::in(value)}, [&] { seen = value; },
            /*priority=*/100);
  rt.taskwait();
  EXPECT_EQ(seen, 7);
}

TEST(Priority, DefaultZeroBehavesLikeFifo) {
  TaskRuntime rt(1, SchedulerPolicy::Priority);
  std::vector<int> order;
  std::atomic<bool> release{false};
  rt.submit("gate", [&] {
    while (!release.load()) std::this_thread::yield();
  });
  for (int i = 0; i < 5; ++i) {
    rt.submit("t", [&order, i] { order.push_back(i); });
  }
  release.store(true);
  rt.taskwait();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Priority, NegativePrioritiesRunLast) {
  TaskRuntime rt(1, SchedulerPolicy::Priority);
  std::vector<int> order;
  std::atomic<bool> release{false};
  rt.submit("gate", [&] {
    while (!release.load()) std::this_thread::yield();
  });
  rt.submit("deferred", [&] { order.push_back(-5); }, /*priority=*/-5);
  rt.submit("normal", [&] { order.push_back(0); });
  release.store(true);
  rt.taskwait();
  EXPECT_EQ(order, (std::vector<int>{0, -5}));
}

}  // namespace
