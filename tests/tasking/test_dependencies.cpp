// Dependency semantics of the task runtime: RAW/WAR/WAW ordering,
// independence, taskwait, exceptions, observers.
#include "tasking/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/error.hpp"

namespace {

using fx::task::Dep;
using fx::task::DepMode;
using fx::task::SchedulerPolicy;
using fx::task::TaskRuntime;

TEST(Deps, FlowDependencyOrdersTasks) {
  TaskRuntime rt(4);
  double data = 0.0;
  std::vector<int> order;
  std::mutex mu;
  auto record = [&](int id) {
    std::lock_guard lock(mu);
    order.push_back(id);
  };
  // Hold the producer until all three tasks are submitted, so the edges
  // are guaranteed to exist (a finished predecessor correctly creates no
  // edge, which would make the edge-count check flaky on slow hosts).
  std::atomic<bool> all_submitted{false};
  // producer -> transformer -> consumer, submitted in order.
  rt.submit("produce", {fx::task::out(data)}, [&] {
    while (!all_submitted.load()) std::this_thread::yield();
    record(1);
    data = 10.0;
  });
  rt.submit("transform", {fx::task::inout(data)}, [&] {
    record(2);
    data *= 2.0;
  });
  rt.submit("consume", {fx::task::in(data)}, [&] {
    record(3);
    EXPECT_DOUBLE_EQ(data, 20.0);
  });
  all_submitted.store(true);
  rt.taskwait();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(data, 20.0);
  EXPECT_EQ(rt.tasks_executed(), 3U);
  EXPECT_GE(rt.edges_created(), 2U);
}

TEST(Deps, ReadersRunConcurrentlyWriterWaits) {
  TaskRuntime rt(4);
  int shared = 0;
  std::atomic<int> readers_in_flight{0};
  std::atomic<int> max_concurrent{0};
  std::atomic<bool> writer_ran{false};

  rt.submit("w0", {fx::task::out(shared)}, [&] { shared = 42; });
  for (int i = 0; i < 3; ++i) {
    rt.submit("r", {fx::task::in(shared)}, [&] {
      EXPECT_FALSE(writer_ran.load());
      const int now = readers_in_flight.fetch_add(1) + 1;
      int prev = max_concurrent.load();
      while (prev < now && !max_concurrent.compare_exchange_weak(prev, now)) {
      }
      EXPECT_EQ(shared, 42);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      readers_in_flight.fetch_sub(1);
    });
  }
  // WAR: the second writer must wait for all three readers.
  rt.submit("w1", {fx::task::out(shared)}, [&] {
    EXPECT_EQ(readers_in_flight.load(), 0);
    writer_ran.store(true);
    shared = 7;
  });
  rt.taskwait();
  EXPECT_TRUE(writer_ran.load());
  EXPECT_EQ(shared, 7);
  // On a 1-core host threads may serialize; just require correctness, and
  // verify the runtime *allowed* concurrency (no reader-reader edges).
  EXPECT_GE(max_concurrent.load(), 1);
}

TEST(Deps, IndependentTasksDoNotSerialize) {
  TaskRuntime rt(2);
  int a = 0;
  int b = 0;
  rt.submit("ta", {fx::task::out(a)}, [&] { a = 1; });
  rt.submit("tb", {fx::task::out(b)}, [&] { b = 2; });
  rt.taskwait();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(rt.edges_created(), 0U);
}

TEST(Deps, WawOrdersWriters) {
  TaskRuntime rt(4);
  int x = 0;
  for (int i = 1; i <= 20; ++i) {
    rt.submit("w", {fx::task::out(x)}, [&x, i] { x = i; });
  }
  rt.taskwait();
  EXPECT_EQ(x, 20);
}

TEST(Deps, SpanClausesUsePartialOverlap) {
  TaskRuntime rt(4);
  std::vector<double> buf(100, 0.0);
  std::span<double> left(buf.data(), 50);
  std::span<double> right(buf.data() + 50, 50);
  std::span<double> middle(buf.data() + 25, 50);  // overlaps both

  std::vector<int> order;
  std::mutex mu;
  auto record = [&](int id) {
    std::lock_guard lock(mu);
    order.push_back(id);
  };

  rt.submit("left", {fx::task::out(left)}, [&] { record(1); });
  rt.submit("right", {fx::task::out(right)}, [&] { record(2); });
  rt.submit("middle", {fx::task::inout(middle)}, [&] {
    std::lock_guard lock(mu);
    // Both disjoint writers finished before the overlapping one starts.
    EXPECT_EQ(order.size(), 2U);
  });
  rt.taskwait();
}

TEST(Deps, DiamondGraph) {
  TaskRuntime rt(4);
  int src = 0;
  int l = 0;
  int r = 0;
  int sink = 0;
  rt.submit("src", {fx::task::out(src)}, [&] { src = 5; });
  rt.submit("l", {fx::task::in(src), fx::task::out(l)}, [&] { l = src + 1; });
  rt.submit("r", {fx::task::in(src), fx::task::out(r)}, [&] { r = src + 2; });
  rt.submit("sink", {fx::task::in(l), fx::task::in(r), fx::task::out(sink)},
            [&] { sink = l * r; });
  rt.taskwait();
  EXPECT_EQ(sink, 42);
}

TEST(Deps, NestedSubmissionFromTasks) {
  TaskRuntime rt(3);
  std::atomic<int> count{0};
  rt.submit("outer", [&] {
    for (int i = 0; i < 5; ++i) {
      rt.submit("inner", [&] { count.fetch_add(1); });
    }
  });
  rt.taskwait();  // must cover transitively spawned tasks
  EXPECT_EQ(count.load(), 5);
}

TEST(Deps, TaskwaitRethrowsFirstTaskException) {
  TaskRuntime rt(2);
  rt.submit("boom", [&] { throw std::runtime_error("task exploded"); });
  rt.submit("fine", [&] {});
  EXPECT_THROW(rt.taskwait(), std::runtime_error);
  // Runtime stays usable afterwards.
  std::atomic<bool> ran{false};
  rt.submit("after", [&] { ran.store(true); });
  rt.taskwait();
  EXPECT_TRUE(ran.load());
}

TEST(Deps, TaskwaitInsideTaskIsRejected) {
  TaskRuntime rt(2);
  std::atomic<bool> threw{false};
  rt.submit("bad", [&] {
    try {
      rt.taskwait();
    } catch (const fx::core::Error&) {
      threw.store(true);
    }
  });
  rt.taskwait();
  EXPECT_TRUE(threw.load());
}

TEST(Deps, ObserverSeesStartAndEnd) {
  TaskRuntime rt(2);
  std::mutex mu;
  std::vector<std::string> events;
  fx::task::TaskObserver obs;
  obs.on_start = [&](int worker, const std::string& label, double t) {
    std::lock_guard lock(mu);
    EXPECT_GE(worker, 0);
    EXPECT_GT(t, 0.0);
    events.push_back("start:" + label);
  };
  obs.on_end = [&](int, const std::string& label, double) {
    std::lock_guard lock(mu);
    events.push_back("end:" + label);
  };
  rt.set_observer(obs);
  rt.submit("alpha", [&] {});
  rt.taskwait();
  ASSERT_EQ(events.size(), 2U);
  EXPECT_EQ(events[0], "start:alpha");
  EXPECT_EQ(events[1], "end:alpha");
}

TEST(Deps, FifoPolicyStartsTasksInSubmissionOrder) {
  TaskRuntime rt(1, SchedulerPolicy::Fifo);  // single worker: strict order
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    rt.submit("t", [&order, i] { order.push_back(i); });
  }
  rt.taskwait();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Deps, LifoPolicyStartsNewestFirst) {
  TaskRuntime rt(1, SchedulerPolicy::Lifo);
  std::vector<int> order;
  // Block the single worker so all submissions queue up, then observe order.
  std::atomic<bool> release{false};
  rt.submit("gate", [&] {
    while (!release.load()) std::this_thread::yield();
  });
  for (int i = 0; i < 5; ++i) {
    rt.submit("t", [&order, i] { order.push_back(i); });
  }
  release.store(true);
  rt.taskwait();
  EXPECT_EQ(order, (std::vector<int>{4, 3, 2, 1, 0}));
}

TEST(Deps, ZeroLengthDepsAreIgnored) {
  TaskRuntime rt(2);
  std::vector<double> empty;
  rt.submit("t", {Dep{empty.data(), 0, DepMode::InOut}}, [&] {});
  rt.taskwait();
  EXPECT_EQ(rt.edges_created(), 0U);
}

TEST(Deps, RejectsZeroWorkers) {
  EXPECT_THROW(TaskRuntime rt(0), fx::core::Error);
}

}  // namespace
