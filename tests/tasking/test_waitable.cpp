// Completion-waitable tasks and scheduler stress: waitables park instead of
// pinning workers, honor dependency clauses, release successors on the
// completing attempt, funnel blocking polls through a single slot given to
// the earliest-submitted parked wait, and surface poll exceptions as
// TaskError; the Priority policy and
// dense overlapping-inout graphs stay correct under many workers (this file
// also runs under TSan in CI).
#include "tasking/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"

namespace {

using fx::core::TaskError;
using fx::task::SchedulerPolicy;
using fx::task::TaskRuntime;

TEST(Waitable, ParksUntilExternalCompletionWithoutPinningWorkers) {
  TaskRuntime rt(2);
  std::atomic<bool> ready{false};
  std::atomic<int> polls{0};
  std::atomic<int> other_tasks{0};
  // The waitable completes only once `ready` flips -- which a later plain
  // task does, so completion *requires* that a worker stayed available
  // while the waitable was parked.
  rt.submit_waitable("wait_flag", {}, [&](bool last_chance) {
    polls.fetch_add(1);
    if (ready.load()) return true;
    if (last_chance) {
      while (!ready.load()) std::this_thread::yield();
      return true;
    }
    return false;
  });
  for (int i = 0; i < 8; ++i) {
    rt.submit("work", [&] { other_tasks.fetch_add(1); });
  }
  rt.submit("flip", [&] { ready.store(true); });
  rt.taskwait();
  EXPECT_EQ(other_tasks.load(), 8);
  EXPECT_GE(polls.load(), 1);
}

TEST(Waitable, DependencyClausesOrderWaitablesAndSuccessors) {
  TaskRuntime rt(3);
  char token = 0;
  std::mutex mu;
  std::vector<int> order;
  auto record = [&](int id) {
    std::lock_guard lock(mu);
    order.push_back(id);
  };
  std::atomic<int> attempts{0};
  rt.submit("produce", {fx::task::inout(token)}, [&] { record(1); });
  rt.submit_waitable("exchange", {fx::task::inout(token)},
                     [&](bool /*last_chance*/) {
                       // Retire on the third attempt: successors must not
                       // start on the parked attempts.
                       if (attempts.fetch_add(1) < 2) return false;
                       record(2);
                       return true;
                     });
  rt.submit("consume", {fx::task::inout(token)}, [&] { record(3); });
  rt.taskwait();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Waitable, OldestParkedGetsTheBlockingAttemptFirst) {
  // One worker, two parked waitables that only complete on the blocking
  // (last-chance) attempt: the runtime must hand the blocking slot to the
  // older one first.
  TaskRuntime rt(1);
  std::mutex mu;
  std::vector<int> blocking_order;
  auto waitable = [&](int id) {
    return [&, id](bool last_chance) {
      if (!last_chance) return false;
      std::lock_guard lock(mu);
      blocking_order.push_back(id);
      return true;
    };
  };
  rt.submit_waitable("older", {}, waitable(1));
  rt.submit_waitable("younger", {}, waitable(2));
  rt.taskwait();
  EXPECT_EQ(blocking_order, (std::vector<int>{1, 2}));
}

TEST(Waitable, LateParkedWaitStillPolledWhileBlockingSlotHeld) {
  // A wait that parks AFTER the blocking slot was claimed can become
  // completable with no remaining task activity to trigger a sweep.  The
  // blocked wait here only finishes once the late-parked one retires, so
  // idle workers must keep nonblocking polls flowing while the blocking
  // slot is held -- exactly the streaming-pipeline deadlock shape where
  // rank A blocks on a young collective whose peers are stuck behind a
  // wait that parked on A after A's blocking slot was already claimed.
  TaskRuntime rt(2);
  std::atomic<bool> flag{false};
  rt.submit_waitable("older_blocking", {}, [&](bool last_chance) {
    if (!last_chance) return false;
    while (!flag.load()) std::this_thread::yield();
    return true;
  });
  // Let a worker escalate the first wait into the blocking slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto t0 = std::chrono::steady_clock::now();
  rt.submit_waitable("late_parked", {}, [&, t0](bool /*last_chance*/) {
    // Incomplete during the submission-time sweep, completable shortly
    // after -- but only a periodic idle sweep will ever notice.
    if (std::chrono::steady_clock::now() - t0 <
        std::chrono::milliseconds(50)) {
      return false;
    }
    flag.store(true);
    return true;
  });
  rt.taskwait();
  EXPECT_TRUE(flag.load());
}

TEST(Waitable, ThrowingPollCompletesTheTaskWithTaskError) {
  TaskRuntime rt(2);
  rt.submit_waitable("doomed", {}, [](bool /*last_chance*/) -> bool {
    throw fx::core::Error("exchange failed");
  });
  // A dependent successor must still be released (error path drains).
  std::atomic<bool> ran{false};
  rt.submit("after", [&] { ran.store(true); });
  EXPECT_THROW(rt.taskwait(), TaskError);
  EXPECT_TRUE(ran.load());
}

TEST(Waitable, ManyInFlightWaitablesRetireInChainOrderPerSlot) {
  // Streaming-executor shape: D slots, each a chain of compute -> post ->
  // waitable -> compute, all slots concurrent.  Per-slot program order
  // must hold at any interleaving.
  constexpr int kSlots = 6;
  constexpr int kRounds = 20;
  TaskRuntime rt(4);
  std::vector<char> tokens(kSlots, 0);
  std::vector<std::vector<int>> trace(kSlots);
  std::vector<std::atomic<bool>> posted(kSlots);
  std::mutex mu;
  for (int r = 0; r < kRounds; ++r) {
    for (int s = 0; s < kSlots; ++s) {
      rt.submit("post", {fx::task::inout(tokens[s])}, [&, s, r] {
        std::lock_guard lock(mu);
        trace[s].push_back(2 * r);
        posted[s].store(true);
      });
      rt.submit_waitable("wait", {fx::task::inout(tokens[s])},
                         [&, s, r](bool last_chance) {
                           if (!posted[s].load() && !last_chance) {
                             return false;
                           }
                           std::lock_guard lock(mu);
                           trace[s].push_back(2 * r + 1);
                           posted[s].store(false);
                           return true;
                         });
    }
  }
  rt.taskwait();
  for (int s = 0; s < kSlots; ++s) {
    ASSERT_EQ(trace[s].size(), static_cast<std::size_t>(2 * kRounds));
    for (int i = 0; i < 2 * kRounds; ++i) {
      EXPECT_EQ(trace[s][static_cast<std::size_t>(i)], i) << "slot " << s;
    }
  }
}

TEST(Scheduler, PriorityPolicyWithDenseOverlappingInoutRanges) {
  // Many tasks over overlapping windows of one buffer, random priorities:
  // the dependency graph must serialize every overlapping pair regardless
  // of what the priority heap does with the ready set.
  constexpr int kCells = 64;
  constexpr int kTasks = 200;
  TaskRuntime rt(4, SchedulerPolicy::Priority);
  std::vector<int> cells(kCells, 0);
  std::vector<int> expected(kCells, 0);
  for (int t = 0; t < kTasks; ++t) {
    const int lo = (t * 7) % (kCells - 8);
    const int hi = lo + 1 + (t * 3) % 8;
    for (int c = lo; c < hi; ++c) ++expected[static_cast<std::size_t>(c)];
    const std::span<int> window{cells.data() + lo,
                                static_cast<std::size_t>(hi - lo)};
    rt.submit("bump", {fx::task::inout(window)},
              [window] {
                // Unsynchronized on purpose: only the dependency graph
                // orders overlapping windows (TSan verifies).
                for (int& c : window) ++c;
              },
              /*priority=*/t % 5 - 2);
  }
  rt.taskwait();
  EXPECT_EQ(cells, expected);
}

TEST(Scheduler, PriorityPolicyRunsWaitablesAndTasksMixed) {
  TaskRuntime rt(3, SchedulerPolicy::Priority);
  std::atomic<int> done{0};
  for (int i = 0; i < 30; ++i) {
    if (i % 3 == 0) {
      std::atomic<int>* d = &done;
      auto tries = std::make_shared<std::atomic<int>>(0);
      rt.submit_waitable(
          "w", {},
          [d, tries](bool last_chance) {
            if (tries->fetch_add(1) < 1 && !last_chance) return false;
            d->fetch_add(1);
            return true;
          },
          /*priority=*/i % 4);
    } else {
      rt.submit(
          "t", [&] { done.fetch_add(1); }, /*priority=*/i % 4);
    }
  }
  rt.taskwait();
  EXPECT_EQ(done.load(), 30);
}

}  // namespace
