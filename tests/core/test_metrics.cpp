// Metrics registry: counter/gauge/histogram semantics, thread safety of
// concurrent recording, quantile monotonicity, and the dump formats.
#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"

namespace {

using fx::core::Counter;
using fx::core::Gauge;
using fx::core::Histogram;
using fx::core::MetricsRegistry;

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0U);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42U);
  c.reset();
  EXPECT_EQ(c.value(), 0U);
}

TEST(Counter, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, SetAddMax) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), 2.25);
  g.max_of(1.0);  // lower: no effect
  EXPECT_DOUBLE_EQ(g.value(), 2.25);
  g.max_of(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Gauge, ConcurrentAddIsExact) {
  Gauge g;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.add(1.0);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_DOUBLE_EQ(g.value(), kThreads * kPerThread);
}

TEST(Histogram, CountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.snapshot().count, 0U);
  h.record(1.0);
  h.record(4.0);
  h.record(0.25);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 3U);
  EXPECT_DOUBLE_EQ(s.sum, 5.25);
  EXPECT_DOUBLE_EQ(s.min, 0.25);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Histogram, QuantilesHaveBucketResolution) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(100.0);
  // Every sample is 100; any quantile must land within one quarter-octave
  // bucket (2^0.25 ~ 1.19) of it.
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GT(v, 100.0 / 1.2) << "q=" << q;
    EXPECT_LT(v, 100.0 * 1.2) << "q=" << q;
  }
}

TEST(Histogram, QuantilesAreMonotone) {
  Histogram h;
  // Spread across many octaves, including clamped extremes.
  for (int i = 1; i <= 500; ++i) h.record(static_cast<double>(i));
  h.record(0.0);     // clamps into the bottom bucket
  h.record(1e300);   // clamps into the top bucket
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "quantile not monotone at q=" << q;
    prev = v;
  }
}

TEST(Histogram, ClampedValuesStillCount) {
  Histogram h;
  h.record(-5.0);
  h.record(0.0);
  h.record(1e300);
  h.record(1e-300);
  EXPECT_EQ(h.snapshot().count, 4U);
}

TEST(Histogram, ConcurrentRecordsKeepCountAndSum) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  double want_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) want_sum += (t + 1) * double(kPerThread);
  EXPECT_DOUBLE_EQ(s.sum, want_sum);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, kThreads);
}

TEST(Registry, SameNameReturnsSameMetric) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3U);
}

TEST(Registry, KindCollisionThrows) {
  MetricsRegistry reg;
  reg.counter("dual");
  EXPECT_THROW(reg.gauge("dual"), fx::core::Error);
  EXPECT_THROW(reg.histogram("dual"), fx::core::Error);
}

TEST(Registry, RowsAreSortedAndTyped) {
  MetricsRegistry reg;
  reg.histogram("c.hist").record(2.0);
  reg.counter("a.count").add(5);
  reg.gauge("b.gauge").set(1.5);
  const auto rows = reg.rows();
  ASSERT_EQ(rows.size(), 3U);
  EXPECT_EQ(rows[0].name, "a.count");
  EXPECT_EQ(rows[0].kind, MetricsRegistry::Row::Kind::Counter);
  EXPECT_DOUBLE_EQ(rows[0].value, 5.0);
  EXPECT_EQ(rows[1].name, "b.gauge");
  EXPECT_DOUBLE_EQ(rows[1].value, 1.5);
  EXPECT_EQ(rows[2].name, "c.hist");
  EXPECT_EQ(rows[2].hist.count, 1U);
}

TEST(Registry, CsvDumpHasHeaderAndRows) {
  MetricsRegistry reg;
  reg.counter("n.ops").add(7);
  reg.histogram("n.wait").record(0.5);
  std::stringstream ss;
  reg.dump(ss, MetricsRegistry::DumpFormat::Csv);
  const std::string out = ss.str();
  EXPECT_NE(out.find("kind,name,value,count,sum,min,max,p50,p95,p99"),
            std::string::npos);
  EXPECT_NE(out.find("counter,n.ops,7"), std::string::npos);
  EXPECT_NE(out.find("histogram,n.wait"), std::string::npos);
}

TEST(Registry, JsonDumpIsWellFormed) {
  MetricsRegistry reg;
  reg.counter("j.ops").add(1);
  reg.gauge("j.depth").set(4.0);
  std::stringstream ss;
  reg.dump(ss, MetricsRegistry::DumpFormat::Json);
  const std::string out = ss.str();
  EXPECT_NE(out.find("\"metrics\""), std::string::npos);
  EXPECT_NE(out.find("\"j.ops\""), std::string::npos);
  EXPECT_NE(out.find("\"j.depth\""), std::string::npos);
  // Crude balance check; the chrome-export test carries the real validator.
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
  EXPECT_EQ(std::count(out.begin(), out.end(), '['),
            std::count(out.begin(), out.end(), ']'));
}

TEST(Registry, ResetZeroesEverythingButKeepsReferences) {
  MetricsRegistry reg;
  Counter& c = reg.counter("r.ops");
  Histogram& h = reg.histogram("r.wait");
  c.add(9);
  h.record(3.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0U);
  EXPECT_EQ(h.snapshot().count, 0U);
  c.add();
  EXPECT_EQ(reg.counter("r.ops").value(), 1U);
}

TEST(Registry, GlobalIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

}  // namespace
