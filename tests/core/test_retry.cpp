// Retry schedule, deadline budgets, and validated env parsing.
//
// The load-bearing regression here: RetryController::backoff() must clamp
// its sleep to the remaining FFTX_RETRY_DEADLINE_S budget.  It used to
// sleep the full jittered delay even when the deadline had already passed
// mid-backoff, which stretched "cancel by T" into "cancel by T plus one
// full backoff" -- fatal for the serve frontend's deadline guarantees.
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/deadline.hpp"
#include "core/env.hpp"
#include "core/error.hpp"
#include "core/retry.hpp"
#include "core/timer.hpp"

namespace {

using fx::core::Deadline;
using fx::core::RetryController;
using fx::core::RetryPolicy;

/// Scoped env var: set on construction, restore on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_, saved_.c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(RetryPolicy, DelayCurveIsBoundedAndJittered) {
  RetryPolicy p;
  p.base_delay_ms = 1.0;
  p.multiplier = 2.0;
  p.max_delay_ms = 6.0;
  p.jitter = 0.5;
  for (int k = 0; k < 10; ++k) {
    const double d = p.delay_ms(k, /*salt=*/7);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 6.0 * 1.5);
  }
  // Deterministic: same (seed, salt, attempt) -> same delay.
  EXPECT_EQ(p.delay_ms(3, 11), p.delay_ms(3, 11));
}

TEST(RetryPolicy, MergeDeadlineTakesTheTighterBudget) {
  EXPECT_EQ(RetryPolicy::merge_deadline_s(0.0, 0.0), 0.0);
  EXPECT_EQ(RetryPolicy::merge_deadline_s(5.0, 0.0), 5.0);
  EXPECT_EQ(RetryPolicy::merge_deadline_s(0.0, 3.0), 3.0);
  EXPECT_EQ(RetryPolicy::merge_deadline_s(5.0, 3.0), 3.0);
  EXPECT_EQ(RetryPolicy::merge_deadline_s(2.0, 3.0), 2.0);
  // Negative "b" (already-expired remaining budget) must not mean
  // unlimited.
  EXPECT_EQ(RetryPolicy::merge_deadline_s(0.0, -1.0), 0.0);
}

TEST(RetryController, AttemptBudgetStopsRetries) {
  RetryPolicy p;
  p.max_attempts = 3;
  p.base_delay_ms = 0.0;
  p.max_delay_ms = 0.0;
  RetryController retry(p);
  int tries = 0;
  for (;;) {
    ++tries;  // simulated failing attempt
    if (!retry.should_retry()) break;
    retry.backoff();
  }
  EXPECT_EQ(tries, 3);
}

TEST(RetryController, BackoffNeverSleepsPastTheDeadline) {
  RetryPolicy p;
  p.max_attempts = 1000;
  p.base_delay_ms = 5000.0;  // would sleep 5 s per backoff unclamped
  p.multiplier = 1.0;
  p.max_delay_ms = 5000.0;
  p.jitter = 0.0;
  p.deadline_s = 0.05;
  RetryController retry(p);
  const double t0 = fx::core::WallTimer::now();
  while (retry.should_retry()) {
    retry.backoff();
  }
  const double elapsed = fx::core::WallTimer::now() - t0;
  // One clamped backoff may run right up to the deadline, never a full
  // 5 s sleep beyond it.  Generous ceiling for CI jitter.
  EXPECT_LT(elapsed, 1.0);
  EXPECT_GE(retry.elapsed_s(), 0.0);
}

TEST(RetryController, ExpiredDeadlineBackoffReturnsImmediately) {
  RetryPolicy p;
  p.base_delay_ms = 5000.0;
  p.max_delay_ms = 5000.0;
  p.jitter = 0.0;
  p.deadline_s = 1e-9;  // expired before the first backoff
  RetryController retry(p);
  const double t0 = fx::core::WallTimer::now();
  const double slept = retry.backoff();
  EXPECT_LT(fx::core::WallTimer::now() - t0, 0.5);
  EXPECT_LT(slept, 500.0);
  EXPECT_FALSE(retry.should_retry());
}

TEST(RetryPolicy, FromEnvRejectsGarbageWithNamedErrors) {
  {
    ScopedEnv e("FFTX_RETRY_MAX_ATTEMPTS", "zero");
    EXPECT_THROW(RetryPolicy::from_env(), fx::core::Error);
  }
  {
    ScopedEnv e("FFTX_RETRY_MAX_ATTEMPTS", "0");  // below the [1, ...] bound
    EXPECT_THROW(RetryPolicy::from_env(), fx::core::Error);
  }
  {
    ScopedEnv e("FFTX_RETRY_JITTER", "1.5");  // probability > 1
    EXPECT_THROW(RetryPolicy::from_env(), fx::core::Error);
  }
  {
    ScopedEnv e("FFTX_RETRY_DEADLINE_S", "-3");
    EXPECT_THROW(RetryPolicy::from_env(), fx::core::Error);
  }
  {
    ScopedEnv a("FFTX_RETRY_MAX_ATTEMPTS", "7");
    ScopedEnv b("FFTX_RETRY_DEADLINE_S", "2.5");
    const RetryPolicy p = RetryPolicy::from_env();
    EXPECT_EQ(p.max_attempts, 7);
    EXPECT_DOUBLE_EQ(p.deadline_s, 2.5);
  }
}

TEST(EnvHelpers, ValidateRangeAndJunk) {
  int iv = 42;
  {
    ScopedEnv e("FX_TEST_ENV_INT", "17");
    EXPECT_TRUE(fx::core::env_int_in("FX_TEST_ENV_INT", iv, 1, 100, "test"));
    EXPECT_EQ(iv, 17);
  }
  {
    ScopedEnv e("FX_TEST_ENV_INT", "101");
    EXPECT_THROW(fx::core::env_int_in("FX_TEST_ENV_INT", iv, 1, 100, "test"),
                 fx::core::Error);
  }
  {
    ScopedEnv e("FX_TEST_ENV_INT", "12abc");
    EXPECT_THROW(fx::core::env_int_in("FX_TEST_ENV_INT", iv, 1, 100, "test"),
                 fx::core::Error);
  }
  double dv = 1.0;
  {
    ScopedEnv e("FX_TEST_ENV_DBL", "nan");
    EXPECT_THROW(fx::core::env_double("FX_TEST_ENV_DBL", dv, "test"),
                 fx::core::Error);
  }
  // Unset keeps the caller's default and reports "not set".
  unsetenv("FX_TEST_ENV_UNSET");
  int keep = 5;
  EXPECT_FALSE(fx::core::env_int_in("FX_TEST_ENV_UNSET", keep, 0, 10));
  EXPECT_EQ(keep, 5);
}

TEST(DeadlineClass, AfterAtSoonerAndExpiry) {
  const Deadline none;
  EXPECT_FALSE(none.active());
  EXPECT_FALSE(none.expired());
  EXPECT_GT(none.remaining_s(), 1e18);  // +inf

  const Deadline gone = Deadline::after(0.0);
  EXPECT_FALSE(gone.active());  // <= 0 budget means "no deadline"

  const Deadline far = Deadline::after(3600.0);
  EXPECT_TRUE(far.active());
  EXPECT_FALSE(far.expired());
  EXPECT_GT(far.remaining_s(), 3000.0);

  const Deadline past = Deadline::at(fx::core::WallTimer::now() - 1.0);
  EXPECT_TRUE(past.active());
  EXPECT_TRUE(past.expired());
  EXPECT_LT(past.remaining_s(), 0.0);

  const Deadline tight = Deadline::sooner(far, past);
  EXPECT_TRUE(tight.expired());
  const Deadline mixed = Deadline::sooner(none, far);
  EXPECT_TRUE(mixed.active());
  EXPECT_DOUBLE_EQ(mixed.expiry_s(), far.expiry_s());
}

}  // namespace
