#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/csv.hpp"
#include "core/format.hpp"
#include "core/table.hpp"

namespace {

TEST(Format, CatConcatenatesStreamables) {
  EXPECT_EQ(fx::core::cat("a", 1, '-', 2.5), "a1-2.5");
}

TEST(Format, FixedAndPct) {
  EXPECT_EQ(fx::core::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fx::core::pct(0.9575), "95.75 %");
  EXPECT_EQ(fx::core::pct(1.0, 1), "100.0 %");
}

TEST(Table, AlignsColumnsAndKeepsRows) {
  fx::core::TablePrinter t("Demo");
  t.header({"metric", "1 x 8", "16 x 8"});
  t.row({"Parallel efficiency", "95.75 %", "86.15 %"});
  t.row({"Load Balance", "97.31 %", "96.91 %"});
  const std::string s = t.str();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("Parallel efficiency"), std::string::npos);
  // Columns aligned: "1 x 8" starts at the same offset in both data rows.
  std::istringstream is(s);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(is, line)) lines.push_back(line);
  const auto pos1 = lines[4].find("95.75");
  const auto pos2 = lines[5].find("97.31");
  EXPECT_EQ(pos1, pos2);
  EXPECT_EQ(t.rows().size(), 2U);
}

TEST(Csv, WritesAndQuotes) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "fx_test_csv.csv").string();
  {
    fx::core::CsvWriter w(path);
    w.row({"a", "b,c", "d\"e"});
    w.row({"1", "2", "3"});
  }
  std::ifstream in(path);
  std::string l1;
  std::string l2;
  std::getline(in, l1);
  std::getline(in, l2);
  EXPECT_EQ(l1, "a,\"b,c\",\"d\"\"e\"");
  EXPECT_EQ(l2, "1,2,3");
  std::filesystem::remove(path);
}

TEST(Csv, CreatesParentDirectories) {
  const auto dir = std::filesystem::temp_directory_path() / "fx_csv_sub";
  std::filesystem::remove_all(dir);
  const std::string path = (dir / "deep" / "out.csv").string();
  {
    fx::core::CsvWriter w(path);
    w.row({"x"});
  }
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove_all(dir);
}

}  // namespace
