#include "core/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

TEST(Error, CheckPassesOnTrue) {
  EXPECT_NO_THROW(FX_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(FX_ASSERT(true, "never shown"));
}

TEST(Error, CheckThrowsOnFalse) {
  EXPECT_THROW(FX_CHECK(false), fx::core::Error);
  EXPECT_THROW(FX_ASSERT(2 > 3), fx::core::Error);
}

TEST(Error, MessageContainsConditionAndContext) {
  try {
    FX_CHECK(1 == 2, "custom context");
    FAIL() << "expected throw";
  } catch (const fx::core::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom context"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(Error, IsARuntimeError) {
  EXPECT_THROW(FX_CHECK(false), std::runtime_error);
}

}  // namespace
