#include "core/json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/error.hpp"

namespace json = fx::core::json;

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_TRUE(json::parse("true").as_bool());
  EXPECT_FALSE(json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(json::parse("3.5").as_number(), 3.5);
  EXPECT_DOUBLE_EQ(json::parse("-12").as_number(), -12.0);
  EXPECT_DOUBLE_EQ(json::parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNested) {
  const auto v = json::parse(
      R"({"name": "run", "cases": [{"x": 1, "ok": true}, {"x": 2.5}],
          "empty": [], "none": null})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("name")->as_string(), "run");
  const auto& cases = v.find("cases")->as_array();
  ASSERT_EQ(cases.size(), 2u);
  EXPECT_DOUBLE_EQ(*cases[0].number_at("x"), 1.0);
  EXPECT_TRUE(cases[0].find("ok")->as_bool());
  EXPECT_DOUBLE_EQ(*cases[1].number_at("x"), 2.5);
  EXPECT_TRUE(v.find("empty")->as_array().empty());
  EXPECT_TRUE(v.find("none")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_FALSE(v.number_at("name").has_value());
}

TEST(Json, StringEscapes) {
  const auto v = json::parse(R"("a\"b\\c\n\tA")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\n\tA");
  // Round trip: escapes re-emitted on dump, re-parsed to the same value.
  EXPECT_EQ(json::parse(v.dump()).as_string(), v.as_string());
}

TEST(Json, RoundTripsThroughDump) {
  json::Object o;
  o["wall_s"] = 1.25;
  o["count"] = std::uint64_t{123456789};
  o["label"] = "fft_z";
  o["flags"] = json::Array{json::Value(true), json::Value(nullptr)};
  const json::Value v{std::move(o)};

  const auto back = json::parse(v.dump());
  EXPECT_DOUBLE_EQ(*back.number_at("wall_s"), 1.25);
  EXPECT_DOUBLE_EQ(*back.number_at("count"), 123456789.0);
  EXPECT_EQ(back.find("label")->as_string(), "fft_z");

  const auto pretty = json::parse(v.dump_pretty());
  EXPECT_DOUBLE_EQ(*pretty.number_at("wall_s"), 1.25);
}

TEST(Json, IntegersPrintExactly) {
  json::Object o;
  o["n"] = std::uint64_t{9007199254740992ULL};  // 2^53, still exact
  const std::string s = json::Value{std::move(o)}.dump();
  EXPECT_NE(s.find("9007199254740992"), std::string::npos);
  EXPECT_EQ(s.find("e+"), std::string::npos);
}

TEST(Json, DeterministicKeyOrder) {
  json::Object o;
  o["zeta"] = 1;
  o["alpha"] = 2;
  const std::string s = json::Value{std::move(o)}.dump();
  EXPECT_LT(s.find("alpha"), s.find("zeta"));
}

TEST(Json, RejectsMalformed) {
  EXPECT_THROW(json::parse(""), fx::core::Error);
  EXPECT_THROW(json::parse("{"), fx::core::Error);
  EXPECT_THROW(json::parse("[1,]"), fx::core::Error);
  EXPECT_THROW(json::parse("\"unterminated"), fx::core::Error);
  EXPECT_THROW(json::parse("tru"), fx::core::Error);
  EXPECT_THROW(json::parse("1 2"), fx::core::Error);
  EXPECT_THROW(json::parse("nan"), fx::core::Error);
}

TEST(Json, KindMismatchThrows) {
  const auto v = json::parse("42");
  EXPECT_THROW(v.as_string(), fx::core::Error);
  EXPECT_THROW(v.as_array(), fx::core::Error);
  EXPECT_THROW(json::parse("[]").as_number(), fx::core::Error);
}

TEST(Json, FileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "fx_json_test";
  const auto path = (dir / "sub" / "report.json").string();
  json::Object o;
  o["ok"] = true;
  json::save_file(json::Value{std::move(o)}, path);
  const auto back = json::load_file(path);
  EXPECT_TRUE(back.find("ok")->as_bool());
  std::filesystem::remove_all(dir);
  EXPECT_THROW(json::load_file(path), fx::core::Error);
}
