#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

using fx::core::Welford;

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(fx::core::mean({}), 0.0);
  EXPECT_DOUBLE_EQ(fx::core::stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(fx::core::median({}), 0.0);
}

TEST(Stats, MeanAndStddevMatchHandComputed) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(fx::core::mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(fx::core::stddev(xs), 2.0);  // classic population example
}

TEST(Stats, MedianOddAndEven) {
  const std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(fx::core::median(odd), 3.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(fx::core::median(even), 2.5);
}

TEST(Stats, WelfordMatchesDirectFormulas) {
  const std::vector<double> xs{1.5, -2.0, 3.25, 0.0, 10.0, -7.5};
  Welford w;
  for (double x : xs) w.add(x);
  EXPECT_EQ(w.count(), xs.size());
  EXPECT_NEAR(w.mean(), fx::core::mean(xs), 1e-12);
  EXPECT_NEAR(w.stddev(), fx::core::stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(w.min(), -7.5);
  EXPECT_DOUBLE_EQ(w.max(), 10.0);
}

TEST(Stats, WelfordSingleSample) {
  Welford w;
  w.add(3.0);
  EXPECT_DOUBLE_EQ(w.mean(), 3.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.min(), 3.0);
  EXPECT_DOUBLE_EQ(w.max(), 3.0);
}

}  // namespace
