#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <set>

namespace {

using fx::core::Rng;

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform(-3.5, 2.25);
    ASSERT_GE(x, -3.5);
    ASSERT_LT(x, 2.25);
  }
}

TEST(Rng, NextBelowInRangeAndCoversAll) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = r.next_below(7);
    ASSERT_LT(v, 7U);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7U);
}

TEST(Rng, RoughlyUniformDoubleMean) {
  Rng r(13);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

}  // namespace
