// Correctness of the 1D engine against the naive reference DFT, across an
// exhaustive small-size sweep plus mixed-radix composites and Bluestein
// primes, in both directions.
#include "fft/plan1d.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include <complex>
#include <thread>
#include <vector>

#include "core/rng.hpp"
#include "fft/dft_ref.hpp"

namespace {

using fx::core::Rng;
using fx::fft::cplx;
using fx::fft::Direction;
using fx::fft::dft_reference;
using fx::fft::Fft1d;

std::vector<cplx> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cplx> x(n);
  for (auto& v : x) v = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return x;
}

double max_abs_err(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

/// Absolute tolerance scaled with transform size; unnormalized outputs grow
/// like sqrt(n) for unit-variance inputs.
double tolerance(std::size_t n) {
  return 1e-11 * (1.0 + std::sqrt(static_cast<double>(n)) * 10.0);
}

class Plan1dSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Plan1dSweep, ForwardMatchesReference) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 100 + n);
  std::vector<cplx> want(n);
  std::vector<cplx> got(n);
  dft_reference(x, want, Direction::Forward);
  Fft1d plan(n, Direction::Forward);
  plan.execute(x.data(), got.data());
  EXPECT_LT(max_abs_err(want, got), tolerance(n)) << "n=" << n;
}

TEST_P(Plan1dSweep, BackwardMatchesReference) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 200 + n);
  std::vector<cplx> want(n);
  std::vector<cplx> got(n);
  dft_reference(x, want, Direction::Backward);
  Fft1d plan(n, Direction::Backward);
  plan.execute(x.data(), got.data());
  EXPECT_LT(max_abs_err(want, got), tolerance(n)) << "n=" << n;
}

TEST_P(Plan1dSweep, RoundTripIsScaledIdentity) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 300 + n);
  std::vector<cplx> mid(n);
  std::vector<cplx> back(n);
  Fft1d fwd(n, Direction::Forward);
  Fft1d bwd(n, Direction::Backward);
  fwd.execute(x.data(), mid.data());
  bwd.execute(mid.data(), back.data());
  const double scale = static_cast<double>(n);
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    err = std::max(err, std::abs(back[i] / scale - x[i]));
  }
  EXPECT_LT(err, tolerance(n)) << "n=" << n;
}

TEST_P(Plan1dSweep, ParsevalHolds) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 400 + n);
  std::vector<cplx> X(n);
  Fft1d plan(n, Direction::Forward);
  plan.execute(x.data(), X.data());
  double ein = 0.0;
  double eout = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ein += std::norm(x[i]);
    eout += std::norm(X[i]);
  }
  EXPECT_NEAR(eout, ein * static_cast<double>(n),
              1e-10 * (1.0 + ein * static_cast<double>(n)))
      << "n=" << n;
}

TEST_P(Plan1dSweep, LinearityHolds) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 500 + n);
  const auto y = random_signal(n, 600 + n);
  const cplx alpha{0.7, -1.3};
  std::vector<cplx> combo(n);
  for (std::size_t i = 0; i < n; ++i) combo[i] = x[i] + alpha * y[i];

  Fft1d plan(n, Direction::Forward);
  std::vector<cplx> X(n);
  std::vector<cplx> Y(n);
  std::vector<cplx> C(n);
  plan.execute(x.data(), X.data());
  plan.execute(y.data(), Y.data());
  plan.execute(combo.data(), C.data());
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    err = std::max(err, std::abs(C[i] - (X[i] + alpha * Y[i])));
  }
  EXPECT_LT(err, tolerance(n)) << "n=" << n;
}

TEST_P(Plan1dSweep, ImpulseTransformsToConstant) {
  const std::size_t n = GetParam();
  std::vector<cplx> x(n, cplx{0.0, 0.0});
  x[0] = cplx{1.0, 0.0};
  std::vector<cplx> X(n);
  Fft1d plan(n, Direction::Forward);
  plan.execute(x.data(), X.data());
  for (std::size_t k = 0; k < n; ++k) {
    ASSERT_NEAR(X[k].real(), 1.0, 1e-12) << "n=" << n << " k=" << k;
    ASSERT_NEAR(X[k].imag(), 0.0, 1e-12) << "n=" << n << " k=" << k;
  }
}

TEST_P(Plan1dSweep, InPlaceMatchesOutOfPlace) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 700 + n);
  std::vector<cplx> want(n);
  Fft1d plan(n, Direction::Forward);
  plan.execute(x.data(), want.data());
  plan.execute(x.data(), x.data());  // in place
  EXPECT_LT(max_abs_err(want, x), 1e-12) << "n=" << n;
}

// Every length 1..40 (covers all leaf radices and many mixed products).
INSTANTIATE_TEST_SUITE_P(AllSmallSizes, Plan1dSweep,
                         ::testing::Range<std::size_t>(1, 41));

// Mixed-radix composites, powers, and QE-typical grid dimensions.
INSTANTIATE_TEST_SUITE_P(
    Composites, Plan1dSweep,
    ::testing::Values(48, 60, 64, 72, 90, 100, 105, 120, 128, 144, 180, 210,
                      240, 243, 256, 360, 500, 512, 625, 729, 1000, 1024));

// Prime sizes exercising the Bluestein fallback.
INSTANTIATE_TEST_SUITE_P(BluesteinPrimes, Plan1dSweep,
                         ::testing::Values(17, 19, 23, 29, 31, 37, 41, 53, 61,
                                           97, 101, 127, 211, 251, 509));

// Composites with a large prime factor (Bluestein through factor paths).
INSTANTIATE_TEST_SUITE_P(BluesteinComposites, Plan1dSweep,
                         ::testing::Values(34, 38, 46, 94, 2 * 17 * 3, 5 * 19));

TEST(Plan1d, BluesteinSelection) {
  EXPECT_FALSE(Fft1d(120, Direction::Forward).uses_bluestein());
  EXPECT_FALSE(Fft1d(13 * 11, Direction::Forward).uses_bluestein());
  EXPECT_TRUE(Fft1d(17, Direction::Forward).uses_bluestein());
  EXPECT_TRUE(Fft1d(2 * 17, Direction::Forward).uses_bluestein());
}

TEST(Plan1d, LengthOneIsIdentity) {
  const cplx x{2.5, -1.5};
  cplx y{};
  Fft1d plan(1, Direction::Forward);
  plan.execute(&x, &y);
  EXPECT_EQ(y, x);
}

TEST(Plan1d, RejectsZeroLength) {
  EXPECT_THROW(Fft1d(0, Direction::Forward), fx::core::Error);
}

TEST(Plan1d, ConcurrentExecutionOnSharedPlanIsSafe) {
  constexpr std::size_t kN = 240;
  Fft1d plan(kN, Direction::Forward);
  const auto x = random_signal(kN, 42);
  std::vector<cplx> want(kN);
  plan.execute(x.data(), want.data());

  constexpr int kThreads = 4;
  std::vector<double> errs(kThreads, 1.0);
  {
    std::vector<std::jthread> pool;
    pool.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&, t] {
        std::vector<cplx> got(kN);
        for (int iter = 0; iter < 50; ++iter) {
          plan.execute(x.data(), got.data());
        }
        errs[static_cast<std::size_t>(t)] = max_abs_err(want, got);
      });
    }
  }
  for (double e : errs) EXPECT_LT(e, 1e-12);
}

}  // namespace
