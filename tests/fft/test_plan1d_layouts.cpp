// Strided and batched execution paths: every layout must agree with the
// contiguous transform of the logically identical signal.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "core/rng.hpp"
#include "fft/plan1d.hpp"

namespace {

using fx::core::Rng;
using fx::fft::cplx;
using fx::fft::Direction;
using fx::fft::Fft1d;
using fx::fft::Workspace;

std::vector<cplx> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cplx> x(n);
  for (auto& v : x) v = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return x;
}

struct LayoutCase {
  std::size_t n;
  std::size_t istride;
  std::size_t ostride;
};

class StridedSweep : public ::testing::TestWithParam<LayoutCase> {};

TEST_P(StridedSweep, MatchesContiguous) {
  const auto [n, istride, ostride] = GetParam();
  Fft1d plan(n, Direction::Forward);
  Workspace ws;

  const auto logical = random_signal(n, n * 31 + istride);
  std::vector<cplx> want(n);
  plan.execute(logical.data(), want.data(), ws);

  // Spread the signal into a strided buffer with poisoned gaps.
  std::vector<cplx> in(n * istride + 1, cplx{777.0, -777.0});
  for (std::size_t j = 0; j < n; ++j) in[j * istride] = logical[j];
  std::vector<cplx> out(n * ostride + 1, cplx{-555.0, 555.0});

  plan.execute_strided(in.data(), istride, out.data(), ostride, ws);

  for (std::size_t k = 0; k < n; ++k) {
    ASSERT_NEAR(std::abs(out[k * ostride] - want[k]), 0.0, 1e-10)
        << "k=" << k;
  }
  // Gap elements between outputs are untouched.
  if (ostride > 1) {
    EXPECT_EQ(out[1], (cplx{-555.0, 555.0}));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, StridedSweep,
    ::testing::Values(LayoutCase{8, 3, 1}, LayoutCase{8, 1, 3},
                      LayoutCase{12, 5, 2}, LayoutCase{60, 7, 7},
                      LayoutCase{17, 2, 3},   // Bluestein with strides
                      LayoutCase{1, 4, 4}, LayoutCase{128, 2, 1},
                      LayoutCase{100, 100, 1}, LayoutCase{45, 1, 45}));

TEST(Batched, ManyContiguousTransforms) {
  constexpr std::size_t kN = 24;
  constexpr std::size_t kBatch = 7;
  Fft1d plan(kN, Direction::Backward);
  Workspace ws;

  std::vector<cplx> in(kN * kBatch);
  for (std::size_t b = 0; b < kBatch; ++b) {
    const auto sig = random_signal(kN, 900 + b);
    std::copy(sig.begin(), sig.end(), in.begin() + static_cast<long>(b * kN));
  }
  std::vector<cplx> out(kN * kBatch);
  plan.execute_many(kBatch, in.data(), 1, kN, out.data(), 1, kN, ws);

  for (std::size_t b = 0; b < kBatch; ++b) {
    std::vector<cplx> want(kN);
    plan.execute(in.data() + b * kN, want.data(), ws);
    for (std::size_t k = 0; k < kN; ++k) {
      ASSERT_NEAR(std::abs(out[b * kN + k] - want[k]), 0.0, 1e-11)
          << "b=" << b << " k=" << k;
    }
  }
}

TEST(Batched, InterleavedBatchLayout) {
  // Transform b reads element j at in[b + j*kBatch] (dist 1, stride kBatch):
  // the transpose-free layout the pipeline uses for z-pencil bundles.
  constexpr std::size_t kN = 30;
  constexpr std::size_t kBatch = 5;
  Fft1d plan(kN, Direction::Forward);
  Workspace ws;

  const auto flat = random_signal(kN * kBatch, 77);
  std::vector<cplx> out(kN * kBatch, cplx{0.0, 0.0});
  plan.execute_many(kBatch, flat.data(), kBatch, 1, out.data(), kBatch, 1, ws);

  for (std::size_t b = 0; b < kBatch; ++b) {
    std::vector<cplx> sig(kN);
    std::vector<cplx> want(kN);
    for (std::size_t j = 0; j < kN; ++j) sig[j] = flat[b + j * kBatch];
    plan.execute(sig.data(), want.data(), ws);
    for (std::size_t k = 0; k < kN; ++k) {
      ASSERT_NEAR(std::abs(out[b + k * kBatch] - want[k]), 0.0, 1e-11)
          << "b=" << b << " k=" << k;
    }
  }
}

TEST(Batched, InPlaceStridedColumns) {
  // In-place column transforms as Fft2d uses them.
  constexpr std::size_t kNx = 6;
  constexpr std::size_t kNy = 20;
  Fft1d plan(kNy, Direction::Forward);
  Workspace ws;

  auto grid = random_signal(kNx * kNy, 55);
  const auto orig = grid;
  plan.execute_many(kNx, grid.data(), kNx, 1, grid.data(), kNx, 1, ws);

  for (std::size_t col = 0; col < kNx; ++col) {
    std::vector<cplx> sig(kNy);
    std::vector<cplx> want(kNy);
    for (std::size_t j = 0; j < kNy; ++j) sig[j] = orig[col + j * kNx];
    plan.execute(sig.data(), want.data(), ws);
    for (std::size_t k = 0; k < kNy; ++k) {
      ASSERT_NEAR(std::abs(grid[col + k * kNx] - want[k]), 0.0, 1e-11)
          << "col=" << col << " k=" << k;
    }
  }
}

}  // namespace
