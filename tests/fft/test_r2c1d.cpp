// Batched r2c/c2r transforms vs. the reference DFT on real input.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "fft/dft_ref.hpp"
#include "fft/plan3d.hpp"
#include "fft/plan_cache.hpp"
#include "fft/r2c1d.hpp"

namespace {

using fx::core::Rng;
using fx::fft::BatchKernel;
using fx::fft::BatchPlanR2c1d;
using fx::fft::cplx;
using fx::fft::Direction;
using fx::fft::Workspace;

std::vector<double> random_real(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  return x;
}

// Reference r2c: full complex DFT of the real signal, first n/2+1 kept.
std::vector<cplx> reference_half_spectrum(const std::vector<double>& x) {
  const std::size_t n = x.size();
  std::vector<cplx> in(n);
  for (std::size_t j = 0; j < n; ++j) in[j] = cplx{x[j], 0.0};
  std::vector<cplx> full(n);
  fx::fft::dft_reference(in, full, Direction::Forward);
  full.resize(n / 2 + 1);
  return full;
}

// Odd and even lengths, smooth and Bluestein sizes (17, 31, 97 are prime;
// 46 = 2*23 sends the packed path's half-length plan through Bluestein).
class R2cSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(R2cSweep, ForwardMatchesReferenceDft) {
  const std::size_t n = GetParam();
  const auto x = random_real(n, 7 * n + 1);
  const auto want = reference_half_spectrum(x);

  BatchPlanR2c1d plan(n, Direction::Forward);
  EXPECT_EQ(plan.half_spectrum(), n / 2 + 1);
  Workspace ws;
  std::vector<cplx> got(plan.half_spectrum());
  plan.execute(x, got, ws);
  for (std::size_t k = 0; k < got.size(); ++k) {
    ASSERT_NEAR(std::abs(got[k] - want[k]), 0.0, 1e-10)
        << "n=" << n << " k=" << k;
  }
}

TEST_P(R2cSweep, RoundTripScalesByN) {
  const std::size_t n = GetParam();
  const auto x = random_real(n, 9 * n + 2);

  BatchPlanR2c1d fwd(n, Direction::Forward);
  BatchPlanR2c1d bwd(n, Direction::Backward);
  Workspace ws;
  std::vector<cplx> half(fwd.half_spectrum());
  fwd.execute(x, half, ws);
  std::vector<double> back(n);
  bwd.execute(half, back, ws);
  for (std::size_t j = 0; j < n; ++j) {
    ASSERT_NEAR(back[j], static_cast<double>(n) * x[j], 1e-9 * n) << "j=" << j;
  }
}

TEST_P(R2cSweep, ScalarOracleAgreesWithSimdPath) {
  const std::size_t n = GetParam();
  const auto x = random_real(n, 11 * n + 3);

  BatchPlanR2c1d simd(n, Direction::Forward, BatchKernel::Simd);
  BatchPlanR2c1d scalar(n, Direction::Forward, BatchKernel::Scalar);
  EXPECT_FALSE(scalar.packed_active());
  Workspace ws;
  std::vector<cplx> a(simd.half_spectrum());
  std::vector<cplx> b(simd.half_spectrum());
  simd.execute(x, a, ws);
  scalar.execute(x, b, ws);
  for (std::size_t k = 0; k < a.size(); ++k) {
    ASSERT_NEAR(std::abs(a[k] - b[k]), 0.0, 1e-10) << "n=" << n << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, R2cSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 12, 17, 31, 46,
                                           60, 97, 120, 128));

// Batch sweep across layouts: every batch size from tiny to several SIMD
// tiles, contiguous and transposed, against the per-signal reference.
class R2cBatchSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(R2cBatchSweep, ContiguousBatchesMatchReference) {
  const std::size_t howmany = GetParam();
  const std::size_t n = 24;
  const std::size_t nh = n / 2 + 1;
  const auto x = random_real(howmany * n, 100 + howmany);

  BatchPlanR2c1d plan(n, Direction::Forward);
  Workspace ws;
  std::vector<cplx> got(howmany * nh);
  plan.execute_many(howmany, x.data(), 1, n, got.data(), 1, nh, ws);
  for (std::size_t b = 0; b < howmany; ++b) {
    const std::vector<double> xb(x.begin() + static_cast<long>(b * n),
                                 x.begin() + static_cast<long>((b + 1) * n));
    const auto want = reference_half_spectrum(xb);
    for (std::size_t k = 0; k < nh; ++k) {
      ASSERT_NEAR(std::abs(got[b * nh + k] - want[k]), 0.0, 1e-10)
          << "b=" << b << " k=" << k;
    }
  }
}

TEST_P(R2cBatchSweep, TransposedLayoutRoundTrips) {
  const std::size_t howmany = GetParam();
  const std::size_t n = 20;
  const std::size_t nh = n / 2 + 1;
  // Transposed: signal b's element j lives at [j*howmany + b].
  const auto x = random_real(howmany * n, 200 + howmany);

  BatchPlanR2c1d fwd(n, Direction::Forward);
  BatchPlanR2c1d bwd(n, Direction::Backward);
  Workspace ws;
  std::vector<cplx> half(howmany * nh);
  fwd.execute_many(howmany, x.data(), howmany, 1, half.data(), howmany, 1,
                   ws);
  std::vector<double> back(howmany * n);
  bwd.execute_many(howmany, half.data(), howmany, 1, back.data(), howmany, 1,
                   ws);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(back[i], static_cast<double>(n) * x[i], 1e-10 * n)
        << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Batches, R2cBatchSweep,
                         ::testing::Values(1, 2, 3, 7, 8, 9, 16, 33, 64));

TEST(R2c, RejectsWrongDirection) {
  BatchPlanR2c1d fwd(8, Direction::Forward);
  BatchPlanR2c1d bwd(8, Direction::Backward);
  Workspace ws;
  std::vector<double> x(8, 0.0);
  std::vector<cplx> h(5);
  EXPECT_THROW(bwd.execute(std::span<const double>(x),
                           std::span<cplx>(h), ws),
               fx::core::Error);
  EXPECT_THROW(fwd.execute(std::span<const cplx>(h),
                           std::span<double>(x), ws),
               fx::core::Error);
}

TEST(R2c, ExpandHalfSpectrumIsHermitian) {
  const std::size_t n = 12;
  const auto x = random_real(n, 42);
  BatchPlanR2c1d plan(n, Direction::Forward);
  Workspace ws;
  std::vector<cplx> half(plan.half_spectrum());
  plan.execute(x, half, ws);
  std::vector<cplx> full(n);
  fx::fft::expand_half_spectrum(half, full);

  std::vector<cplx> in(n);
  for (std::size_t j = 0; j < n; ++j) in[j] = cplx{x[j], 0.0};
  std::vector<cplx> want(n);
  fx::fft::dft_reference(in, want, Direction::Forward);
  for (std::size_t k = 0; k < n; ++k) {
    ASSERT_NEAR(std::abs(full[k] - want[k]), 0.0, 1e-10) << "k=" << k;
  }
}

TEST(R2c2d3d, HalfPlaneMatchesFullComplexTransform) {
  const std::size_t nx = 12, ny = 10;
  const std::size_t nhx = nx / 2 + 1;
  const auto x = random_real(nx * ny, 77);

  fx::fft::Fft2dR2c r2c(nx, ny, Direction::Forward);
  Workspace ws;
  std::vector<cplx> half(nhx * ny);
  r2c.execute(x.data(), half.data(), ws);

  std::vector<cplx> grid(nx * ny);
  for (std::size_t i = 0; i < x.size(); ++i) grid[i] = cplx{x[i], 0.0};
  fx::fft::Fft2d full(nx, ny, Direction::Forward);
  full.execute(grid.data(), grid.data(), ws);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t kx = 0; kx < nhx; ++kx) {
      ASSERT_NEAR(std::abs(half[kx + nhx * iy] - grid[kx + nx * iy]), 0.0,
                  1e-9)
          << "kx=" << kx << " iy=" << iy;
    }
  }

  fx::fft::Fft2dR2c c2r(nx, ny, Direction::Backward);
  std::vector<double> back(nx * ny);
  c2r.execute(half.data(), back.data(), ws);
  const double vol = static_cast<double>(nx * ny);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(back[i], vol * x[i], 1e-8) << "i=" << i;
  }
}

TEST(R2c2d3d, HalfGridMatchesFullComplexTransform) {
  const std::size_t nx = 8, ny = 6, nz = 5;
  const std::size_t nhx = nx / 2 + 1;
  const auto x = random_real(nx * ny * nz, 78);

  fx::fft::Fft3dR2c r2c(nx, ny, nz, Direction::Forward);
  EXPECT_EQ(r2c.half_volume(), nhx * ny * nz);
  Workspace ws;
  std::vector<cplx> half(r2c.half_volume());
  r2c.execute(x.data(), half.data(), ws);

  std::vector<cplx> grid(nx * ny * nz);
  for (std::size_t i = 0; i < x.size(); ++i) grid[i] = cplx{x[i], 0.0};
  fx::fft::Fft3d full(nx, ny, nz, Direction::Forward);
  full.execute(grid.data(), grid.data(), ws);
  for (std::size_t iz = 0; iz < nz; ++iz) {
    for (std::size_t iy = 0; iy < ny; ++iy) {
      for (std::size_t kx = 0; kx < nhx; ++kx) {
        ASSERT_NEAR(std::abs(half[kx + nhx * (iy + ny * iz)] -
                             grid[kx + nx * (iy + ny * iz)]),
                    0.0, 1e-9)
            << "kx=" << kx << " iy=" << iy << " iz=" << iz;
      }
    }
  }

  fx::fft::Fft3dR2c c2r(nx, ny, nz, Direction::Backward);
  std::vector<double> back(nx * ny * nz);
  c2r.execute(half.data(), back.data(), ws);
  const double vol = static_cast<double>(r2c.volume());
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(back[i], vol * x[i], 1e-7) << "i=" << i;
  }
}

TEST(R2cPlanCache, SharesInstancesAndKeysOnKernel) {
  fx::fft::PlanCache cache;
  const auto p1 = cache.r2c1d(64, Direction::Forward, BatchKernel::Simd);
  const auto p2 = cache.r2c1d(64, Direction::Forward, BatchKernel::Simd);
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_NE(p1.get(),
            cache.r2c1d(64, Direction::Backward, BatchKernel::Simd).get());
  EXPECT_NE(p1.get(),
            cache.r2c1d(64, Direction::Forward, BatchKernel::Scalar).get());
  EXPECT_EQ(cache.size(), 3U);
  cache.clear();
  EXPECT_EQ(cache.size(), 0U);
  // The cleared-out plan stays usable.
  Workspace ws;
  std::vector<double> x(64, 1.0);
  std::vector<cplx> h(33);
  p1->execute(x, h, ws);
  EXPECT_NEAR(h[0].real(), 64.0, 1e-10);
}

}  // namespace
