// The SIMD-across-batch engine must be interchangeable with the scalar
// path: every (length, batch, layout) combination is checked against the
// scalar oracle within 1e-12 relative L2 error, against the naive
// reference DFT, and through round trips -- including batch sizes that
// leave partial tiles and the Bluestein fallback length.
#include "fft/batch1d.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <tuple>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "fft/dft_ref.hpp"

namespace {

using fx::core::Rng;
using fx::fft::BatchKernel;
using fx::fft::BatchPlan1d;
using fx::fft::cplx;
using fx::fft::Direction;
using fx::fft::dft_reference;
using fx::fft::Fft1d;
using fx::fft::Workspace;

constexpr std::size_t kW = BatchPlan1d::kSimdWidth;

std::vector<cplx> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cplx> x(n);
  for (auto& v : x) v = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return x;
}

double rel_l2(const std::vector<cplx>& got, const std::vector<cplx>& want) {
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    num += std::norm(got[i] - want[i]);
    den += std::norm(want[i]);
  }
  return den == 0.0 ? std::sqrt(num) : std::sqrt(num / den);
}

struct BatchCase {
  std::size_t n;
  std::size_t batch;
  bool transposed;  ///< false: (istride 1, idist n); true: (istride batch, idist 1)
};

std::string case_name(const ::testing::TestParamInfo<BatchCase>& info) {
  return "n" + std::to_string(info.param.n) + "_b" +
         std::to_string(info.param.batch) +
         (info.param.transposed ? "_transposed" : "_contiguous");
}

class BatchSweep : public ::testing::TestWithParam<BatchCase> {
 protected:
  [[nodiscard]] std::size_t istride() const {
    return GetParam().transposed ? GetParam().batch : 1;
  }
  [[nodiscard]] std::size_t idist() const {
    return GetParam().transposed ? 1 : GetParam().n;
  }
};

TEST_P(BatchSweep, MatchesScalarOracleWithin1em12RelL2) {
  const auto [n, batch, transposed] = GetParam();
  const BatchPlan1d simd(n, Direction::Forward, BatchKernel::Simd);
  const Fft1d& oracle = simd.scalar_plan();
  Workspace ws;

  const auto in = random_signal(n * batch, 1000 + n * 7 + batch);
  std::vector<cplx> got(n * batch);
  std::vector<cplx> want(n * batch);
  simd.execute_many(batch, in.data(), istride(), idist(), got.data(),
                    istride(), idist(), ws);
  oracle.execute_many(batch, in.data(), istride(), idist(), want.data(),
                      istride(), idist(), ws);
  EXPECT_LT(rel_l2(got, want), 1e-12);
}

TEST_P(BatchSweep, MatchesReferenceDft) {
  const auto [n, batch, transposed] = GetParam();
  // The O(n^2) reference is slow; spot-check the first few transforms of
  // the batch (tile 0 plus the tail path is covered by batch <= kW + 1).
  const std::size_t check = std::min<std::size_t>(batch, kW + 1);
  const BatchPlan1d plan(n, Direction::Backward);
  Workspace ws;

  const auto in = random_signal(n * batch, 2000 + n * 13 + batch);
  std::vector<cplx> got(n * batch);
  plan.execute_many(batch, in.data(), istride(), idist(), got.data(),
                    istride(), idist(), ws);

  const double tol = 1e-11 * (1.0 + std::sqrt(static_cast<double>(n)) * 10.0);
  for (std::size_t b = 0; b < check; ++b) {
    std::vector<cplx> sig(n);
    std::vector<cplx> want(n);
    std::vector<cplx> out(n);
    for (std::size_t j = 0; j < n; ++j) {
      sig[j] = in[b * idist() + j * istride()];
      out[j] = got[b * idist() + j * istride()];
    }
    dft_reference(sig, want, Direction::Backward);
    EXPECT_LT(rel_l2(out, want), tol) << "b=" << b;
  }
}

TEST_P(BatchSweep, RoundTripIsScaledIdentity) {
  const auto [n, batch, transposed] = GetParam();
  const BatchPlan1d fwd(n, Direction::Forward);
  const BatchPlan1d bwd(n, Direction::Backward);
  Workspace ws;

  const auto in = random_signal(n * batch, 3000 + n * 17 + batch);
  std::vector<cplx> mid(n * batch);
  std::vector<cplx> back(n * batch);
  fwd.execute_many(batch, in.data(), istride(), idist(), mid.data(), istride(),
                   idist(), ws);
  bwd.execute_many(batch, mid.data(), istride(), idist(), back.data(),
                   istride(), idist(), ws);
  const double scale = static_cast<double>(n);
  std::vector<cplx> rescaled(back.size());
  for (std::size_t i = 0; i < back.size(); ++i) rescaled[i] = back[i] / scale;
  EXPECT_LT(rel_l2(rescaled, in), 1e-12);
}

TEST_P(BatchSweep, InPlaceMatchesOutOfPlace) {
  const auto [n, batch, transposed] = GetParam();
  const BatchPlan1d plan(n, Direction::Forward);
  Workspace ws;

  auto data = random_signal(n * batch, 4000 + n * 19 + batch);
  std::vector<cplx> want(n * batch);
  plan.execute_many(batch, data.data(), istride(), idist(), want.data(),
                    istride(), idist(), ws);
  plan.execute_many(batch, data.data(), istride(), idist(), data.data(),
                    istride(), idist(), ws);
  EXPECT_LT(rel_l2(data, want), 1e-15);
}

TEST_P(BatchSweep, ScalarKernelPlanMatchesSimdPlan) {
  const auto [n, batch, transposed] = GetParam();
  const BatchPlan1d simd(n, Direction::Forward, BatchKernel::Simd);
  const BatchPlan1d scalar(n, Direction::Forward, BatchKernel::Scalar);
  EXPECT_FALSE(scalar.simd_active());
  Workspace ws;

  const auto in = random_signal(n * batch, 5000 + n * 23 + batch);
  std::vector<cplx> a(n * batch);
  std::vector<cplx> b(n * batch);
  simd.execute_many(batch, in.data(), istride(), idist(), a.data(), istride(),
                    idist(), ws);
  scalar.execute_many(batch, in.data(), istride(), idist(), b.data(),
                      istride(), idist(), ws);
  EXPECT_LT(rel_l2(a, b), 1e-12);
}

std::vector<BatchCase> all_cases() {
  std::vector<BatchCase> cases;
  for (std::size_t n : {60UL, 64UL, 120UL, 243UL, 720UL, 1009UL}) {
    for (std::size_t batch : {1UL, 3UL, kW, kW + 1, 64UL}) {
      cases.push_back({n, batch, false});
      cases.push_back({n, batch, true});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Layouts, BatchSweep, ::testing::ValuesIn(all_cases()),
                         case_name);

TEST(BatchPlan1d, SimdActiveMatchesExpectations) {
  // Mixed-radix sizes that fit the L2 tile budget vectorize...
  EXPECT_TRUE(BatchPlan1d(60, Direction::Forward).simd_active());
  EXPECT_TRUE(BatchPlan1d(720, Direction::Forward).simd_active());
  // ...Bluestein lengths and degenerate sizes fall back to scalar.
  EXPECT_FALSE(BatchPlan1d(1009, Direction::Forward).simd_active());
  EXPECT_FALSE(BatchPlan1d(1, Direction::Forward).simd_active());
  EXPECT_TRUE(BatchPlan1d(1009, Direction::Forward).scalar_plan()
                  .uses_bluestein());
}

TEST(BatchPlan1d, RejectsIncompatiblyOverlappingBatches) {
  const std::size_t n = 16;
  const std::size_t batch = 4;
  const BatchPlan1d plan(n, Direction::Forward);
  Workspace ws;
  auto data = random_signal(n * batch + n, 99);

  // Shifted overlap: out = in + n with the same layout would let
  // transform 0's output clobber transform 1's input.
  EXPECT_THROW(plan.execute_many(batch, data.data(), 1, n, data.data() + n, 1,
                                 n, ws),
               fx::core::Error);
  // Same pointer but mismatched strides is equally invalid.
  EXPECT_THROW(plan.execute_many(batch, data.data(), 1, n, data.data(), batch,
                                 1, ws),
               fx::core::Error);
  // The scalar oracle enforces the same contract.
  EXPECT_THROW(plan.scalar_plan().execute_many(batch, data.data(), 1, n,
                                               data.data() + n, 1, n, ws),
               fx::core::Error);
}

TEST(BatchPlan1d, EmptyBatchIsANoOp) {
  const BatchPlan1d plan(32, Direction::Forward);
  Workspace ws;
  plan.execute_many(0, nullptr, 1, 32, nullptr, 1, 32, ws);
}

}  // namespace
