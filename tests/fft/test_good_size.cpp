#include "fft/good_size.hpp"

#include <gtest/gtest.h>

namespace {

using fx::fft::good_fft_size;
using fx::fft::is_good_fft_size;

TEST(GoodSize, KnownGoodSizes) {
  for (std::size_t n : {1UL, 2UL, 3UL, 4UL, 5UL, 6UL, 7UL, 8UL, 10UL, 12UL,
                        15UL, 60UL, 120UL, 243UL, 1024UL, 2 * 3 * 5 * 7UL}) {
    EXPECT_TRUE(is_good_fft_size(n)) << n;
  }
}

TEST(GoodSize, RejectsLargePrimesAndDoubleSevens) {
  for (std::size_t n : {11UL, 13UL, 17UL, 49UL, 98UL, 121UL, 77UL, 0UL}) {
    EXPECT_FALSE(is_good_fft_size(n)) << n;
  }
}

TEST(GoodSize, KnownRoundUps) {
  EXPECT_EQ(good_fft_size(57), 60U);   // wave grid for ecut=80, a=20
  EXPECT_EQ(good_fft_size(113), 120U); // corresponding dense grid
  EXPECT_EQ(good_fft_size(11), 12U);
  EXPECT_EQ(good_fft_size(0), 1U);
  EXPECT_EQ(good_fft_size(1), 1U);
}

TEST(GoodSize, ResultIsMinimalGoodSize) {
  for (std::size_t n = 1; n <= 600; ++n) {
    const std::size_t g = good_fft_size(n);
    ASSERT_GE(g, n);
    ASSERT_TRUE(is_good_fft_size(g)) << "n=" << n << " g=" << g;
    for (std::size_t m = n; m < g; ++m) {
      ASSERT_FALSE(is_good_fft_size(m)) << "n=" << n << " skipped good " << m;
    }
  }
}

TEST(GoodSize, FixedPointOnGoodInput) {
  for (std::size_t n : {60UL, 120UL, 128UL, 210UL}) {
    EXPECT_EQ(good_fft_size(n), n);
  }
}

}  // namespace
