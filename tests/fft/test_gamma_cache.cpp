// Gamma-point two-real-signals-per-FFT packing and the plan cache.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "fft/dft_ref.hpp"
#include "fft/gamma.hpp"
#include "fft/plan_cache.hpp"

namespace {

using fx::core::Rng;
using fx::fft::cplx;
using fx::fft::Direction;
using fx::fft::Fft1d;
using fx::fft::Workspace;

std::vector<double> random_real(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  return x;
}

class GammaSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GammaSweep, SpectraMatchIndividualTransforms) {
  const std::size_t n = GetParam();
  const auto a = random_real(n, 2 * n + 1);
  const auto b = random_real(n, 2 * n + 2);

  Fft1d fwd(n, Direction::Forward);
  Workspace ws;
  std::vector<cplx> spectrum_a(n);
  std::vector<cplx> spectrum_b(n);
  fx::fft::fft_two_real(fwd, a, b, spectrum_a, spectrum_b, ws);

  // Reference: transform each signal individually.
  std::vector<cplx> ca(n);
  std::vector<cplx> cb(n);
  for (std::size_t j = 0; j < n; ++j) {
    ca[j] = cplx{a[j], 0.0};
    cb[j] = cplx{b[j], 0.0};
  }
  std::vector<cplx> want_a(n);
  std::vector<cplx> want_b(n);
  fx::fft::dft_reference(ca, want_a, Direction::Forward);
  fx::fft::dft_reference(cb, want_b, Direction::Forward);

  for (std::size_t k = 0; k < n; ++k) {
    ASSERT_NEAR(std::abs(spectrum_a[k] - want_a[k]), 0.0, 1e-10)
        << "n=" << n << " k=" << k;
    ASSERT_NEAR(std::abs(spectrum_b[k] - want_b[k]), 0.0, 1e-10)
        << "n=" << n << " k=" << k;
  }
  EXPECT_TRUE(fx::fft::is_hermitian(spectrum_a, 1e-10));
  EXPECT_TRUE(fx::fft::is_hermitian(spectrum_b, 1e-10));
}

TEST_P(GammaSweep, RoundTripRestoresBothSignals) {
  const std::size_t n = GetParam();
  const auto a = random_real(n, 3 * n + 1);
  const auto b = random_real(n, 3 * n + 2);

  Fft1d fwd(n, Direction::Forward);
  Fft1d bwd(n, Direction::Backward);
  Workspace ws;
  std::vector<cplx> sa(n);
  std::vector<cplx> sb(n);
  fx::fft::fft_two_real(fwd, a, b, sa, sb, ws);

  std::vector<double> a2(n);
  std::vector<double> b2(n);
  fx::fft::ifft_two_real(bwd, sa, sb, a2, b2, ws);
  for (std::size_t j = 0; j < n; ++j) {
    ASSERT_NEAR(a2[j], a[j], 1e-11) << "j=" << j;
    ASSERT_NEAR(b2[j], b[j], 1e-11) << "j=" << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GammaSweep,
                         ::testing::Values(2, 3, 8, 12, 17, 60, 128));

TEST(Gamma, PairCountRoundsOddBandCountsUp) {
  // The historical pairing loop used nbands/2 and dropped the odd tail
  // band; the count must round up so the tail rides with a zero partner.
  EXPECT_EQ(fx::fft::gamma_pair_count(0), 0U);
  EXPECT_EQ(fx::fft::gamma_pair_count(1), 1U);
  EXPECT_EQ(fx::fft::gamma_pair_count(2), 1U);
  EXPECT_EQ(fx::fft::gamma_pair_count(5), 3U);
  EXPECT_EQ(fx::fft::gamma_pair_count(6), 3U);
  EXPECT_EQ(fx::fft::gamma_pair_count(7), 4U);
}

TEST(Gamma, RealBandsHandleOddCountsExactly) {
  // 5 bands of length 16: the native r2c path has no pairing, so the odd
  // band count that the packing trick used to truncate works unchanged.
  const std::size_t n = 16;
  const std::size_t nh = n / 2 + 1;
  const std::size_t nbands = 5;
  const auto x = random_real(nbands * n, 505);

  const auto fwd = fx::fft::PlanCache::global().r2c1d(n, Direction::Forward);
  const auto bwd = fx::fft::PlanCache::global().r2c1d(n, Direction::Backward);
  Workspace ws;
  std::vector<cplx> spectra(nbands * nh);
  fx::fft::fft_real_bands(*fwd, nbands, x.data(), n, spectra.data(), nh, ws);

  for (std::size_t b = 0; b < nbands; ++b) {
    std::vector<cplx> in(n);
    for (std::size_t j = 0; j < n; ++j) in[j] = cplx{x[b * n + j], 0.0};
    std::vector<cplx> want(n);
    fx::fft::dft_reference(in, want, Direction::Forward);
    for (std::size_t k = 0; k < nh; ++k) {
      ASSERT_NEAR(std::abs(spectra[b * nh + k] - want[k]), 0.0, 1e-10)
          << "b=" << b << " k=" << k;
    }
  }

  std::vector<double> back(nbands * n);
  fx::fft::ifft_real_bands(*bwd, nbands, spectra.data(), nh, back.data(), n,
                           ws);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(back[i], x[i], 1e-11) << "i=" << i;
  }
}

TEST(Gamma, HermitianCheckRejectsGenericSpectrum) {
  std::vector<cplx> s{{1.0, 0.0}, {2.0, 3.0}, {4.0, 5.0}, {6.0, 7.0}};
  EXPECT_FALSE(fx::fft::is_hermitian(s, 1e-12));
  // A genuinely Hermitian one: X0 real, X1 = conj(X3), X2 real.
  std::vector<cplx> h{{1.0, 0.0}, {2.0, 3.0}, {4.0, 0.0}, {2.0, -3.0}};
  EXPECT_TRUE(fx::fft::is_hermitian(h, 1e-12));
}

TEST(Gamma, RejectsWrongDirectionPlans) {
  Fft1d bwd(8, Direction::Backward);
  Workspace ws;
  std::vector<double> a(8, 0.0);
  std::vector<double> b(8, 0.0);
  std::vector<cplx> sa(8);
  std::vector<cplx> sb(8);
  EXPECT_THROW(fx::fft::fft_two_real(bwd, a, b, sa, sb, ws),
               fx::core::Error);
}

TEST(PlanCache, ReturnsSharedInstances) {
  fx::fft::PlanCache cache;
  const auto p1 = cache.plan1d(64, Direction::Forward);
  const auto p2 = cache.plan1d(64, Direction::Forward);
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_NE(p1.get(), cache.plan1d(64, Direction::Backward).get());
  EXPECT_NE(p1.get(), cache.plan1d(128, Direction::Forward).get());
  EXPECT_EQ(cache.size(), 3U);
}

TEST(PlanCache, CachedPlansWork) {
  fx::fft::PlanCache cache;
  const auto plan = cache.plan1d(12, Direction::Forward);
  std::vector<cplx> x(12, cplx{1.0, 0.0});
  std::vector<cplx> y(12);
  plan->execute(x.data(), y.data());
  EXPECT_NEAR(y[0].real(), 12.0, 1e-12);
  EXPECT_NEAR(std::abs(y[5]), 0.0, 1e-12);

  const auto p2 = cache.plan2d(4, 6, Direction::Backward);
  EXPECT_EQ(p2->nx(), 4U);
  EXPECT_EQ(cache.size(), 2U);
}

TEST(PlanCache, ClearKeepsOutstandingPlansAlive) {
  fx::fft::PlanCache cache;
  const auto plan = cache.plan1d(30, Direction::Forward);
  cache.clear();
  EXPECT_EQ(cache.size(), 0U);
  std::vector<cplx> x(30, cplx{0.5, 0.0});
  std::vector<cplx> y(30);
  plan->execute(x.data(), y.data());  // must not crash
  EXPECT_NEAR(y[0].real(), 15.0, 1e-12);
}

TEST(PlanCache, ConcurrentAccessIsSafe) {
  fx::fft::PlanCache cache;
  std::vector<std::shared_ptr<const Fft1d>> got(8);
  {
    std::vector<std::jthread> pool;
    for (int t = 0; t < 8; ++t) {
      pool.emplace_back([&cache, &got, t] {
        got[static_cast<std::size_t>(t)] =
            cache.plan1d(96, Direction::Forward);
      });
    }
  }
  for (const auto& p : got) EXPECT_EQ(p.get(), got[0].get());
  EXPECT_EQ(cache.size(), 1U);
}

TEST(PlanCache, GlobalInstanceIsSingleton) {
  EXPECT_EQ(&fx::fft::PlanCache::global(), &fx::fft::PlanCache::global());
}

}  // namespace
