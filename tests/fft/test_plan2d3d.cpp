// 2D and 3D plans against the reference transforms.
#include <gtest/gtest.h>

#include <complex>
#include <tuple>
#include <vector>

#include "core/rng.hpp"
#include "fft/dft_ref.hpp"
#include "fft/plan2d.hpp"
#include "fft/plan3d.hpp"

namespace {

using fx::core::Rng;
using fx::fft::cplx;
using fx::fft::Direction;
using fx::fft::Fft2d;
using fx::fft::Fft3d;

std::vector<cplx> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cplx> x(n);
  for (auto& v : x) v = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return x;
}

class Plan2dSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(Plan2dSweep, MatchesReference) {
  const auto [nx, ny] = GetParam();
  const std::size_t n = nx * ny;
  const auto x = random_signal(n, nx * 131 + ny);

  // Reference via dft3d with nz == 1.
  std::vector<cplx> want(n);
  fx::fft::dft3d_reference(x, want, nx, ny, 1, Direction::Forward);

  std::vector<cplx> got(n);
  Fft2d plan(nx, ny, Direction::Forward);
  plan.execute(x.data(), got.data());

  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(std::abs(got[i] - want[i]), 0.0, 1e-9) << "i=" << i;
  }
}

TEST_P(Plan2dSweep, InPlaceMatchesOutOfPlace) {
  const auto [nx, ny] = GetParam();
  const std::size_t n = nx * ny;
  auto x = random_signal(n, nx * 17 + ny + 3);
  std::vector<cplx> want(n);
  Fft2d plan(nx, ny, Direction::Backward);
  plan.execute(x.data(), want.data());
  plan.execute(x.data(), x.data());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(std::abs(x[i] - want[i]), 0.0, 1e-11) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Plan2dSweep,
    ::testing::Values(std::tuple{1UL, 1UL}, std::tuple{4UL, 4UL},
                      std::tuple{8UL, 6UL}, std::tuple{5UL, 12UL},
                      std::tuple{16UL, 16UL}, std::tuple{12UL, 10UL},
                      std::tuple{17UL, 9UL},  // Bluestein along x
                      std::tuple{20UL, 18UL}));

class Plan3dSweep : public ::testing::TestWithParam<
                        std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(Plan3dSweep, MatchesReference) {
  const auto [nx, ny, nz] = GetParam();
  const std::size_t n = nx * ny * nz;
  const auto x = random_signal(n, nx * 7 + ny * 3 + nz);

  std::vector<cplx> want(n);
  fx::fft::dft3d_reference(x, want, nx, ny, nz, Direction::Forward);

  std::vector<cplx> got(n);
  Fft3d plan(nx, ny, nz, Direction::Forward);
  plan.execute(x.data(), got.data());

  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(std::abs(got[i] - want[i]), 0.0, 1e-9) << "i=" << i;
  }
}

TEST_P(Plan3dSweep, RoundTripIsScaledIdentity) {
  const auto [nx, ny, nz] = GetParam();
  const std::size_t n = nx * ny * nz;
  const auto x = random_signal(n, nx + ny + nz + 1000);

  std::vector<cplx> mid(n);
  std::vector<cplx> back(n);
  Fft3d fwd(nx, ny, nz, Direction::Forward);
  Fft3d bwd(nx, ny, nz, Direction::Backward);
  fwd.execute(x.data(), mid.data());
  bwd.execute(mid.data(), back.data());
  const double scale = static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(std::abs(back[i] / scale - x[i]), 0.0, 1e-10) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Plan3dSweep,
    ::testing::Values(std::tuple{1UL, 1UL, 1UL}, std::tuple{4UL, 4UL, 4UL},
                      std::tuple{6UL, 5UL, 4UL}, std::tuple{8UL, 8UL, 8UL},
                      std::tuple{12UL, 10UL, 6UL}, std::tuple{3UL, 16UL, 5UL},
                      std::tuple{10UL, 7UL, 11UL}));

TEST(Plan3d, VolumeAndAccessors) {
  Fft3d plan(4, 6, 8, Direction::Forward);
  EXPECT_EQ(plan.nx(), 4U);
  EXPECT_EQ(plan.ny(), 6U);
  EXPECT_EQ(plan.nz(), 8U);
  EXPECT_EQ(plan.volume(), 192U);
  EXPECT_EQ(plan.direction(), Direction::Forward);
}

}  // namespace
