// G-vector sphere and grid derivation: counts vs analytic volume, cutoff
// invariants, symmetry, grid sizing against the paper's workload.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "pw/gvectors.hpp"
#include "pw/grid.hpp"
#include "pw/lattice.hpp"
#include "pw/wavefunction.hpp"

namespace {

using fx::pw::Cell;
using fx::pw::GridDims;
using fx::pw::GSphere;
using fx::pw::GVector;

TEST(Cell, TpibaAndMillerRadius) {
  const Cell cell{20.0};
  EXPECT_NEAR(cell.tpiba(), 0.3141592653589793, 1e-15);
  // ecut = 80 Ry -> kmax = sqrt(80) bohr^-1 -> mmax = kmax/tpiba ~ 28.47.
  EXPECT_NEAR(cell.miller_radius(80.0), 28.4704, 1e-3);
}

TEST(Cell, InvalidInputsRejected) {
  EXPECT_THROW((void)Cell{0.0}.miller_radius(10.0), fx::core::Error);
  EXPECT_THROW((void)Cell{10.0}.miller_radius(-1.0), fx::core::Error);
}

class SphereSweep : public ::testing::TestWithParam<double> {};

TEST_P(SphereSweep, CountTracksAnalyticVolume) {
  const Cell cell{10.0};
  const GSphere sphere(cell, GetParam());
  const double expect = sphere.analytic_count();
  // Lattice-point counts approach the ball volume with O(r^2) surface error.
  const double r = cell.miller_radius(GetParam());
  EXPECT_NEAR(static_cast<double>(sphere.size()), expect,
              20.0 * r * r + 30.0);
}

TEST_P(SphereSweep, EveryVectorIsInsideCutoffSphere) {
  const Cell cell{10.0};
  const double ecut = GetParam();
  const GSphere sphere(cell, ecut);
  const double r2 = std::pow(cell.miller_radius(ecut), 2);
  for (const GVector& g : sphere.gvectors()) {
    ASSERT_LE(static_cast<double>(g.m2), r2 + 1e-9);
    ASSERT_EQ(g.m2, static_cast<long>(g.mx) * g.mx +
                        static_cast<long>(g.my) * g.my +
                        static_cast<long>(g.mz) * g.mz);
  }
}

TEST_P(SphereSweep, NoDuplicatesAndInversionSymmetric) {
  const Cell cell{10.0};
  const GSphere sphere(cell, GetParam());
  std::set<std::tuple<int, int, int>> seen;
  for (const GVector& g : sphere.gvectors()) {
    ASSERT_TRUE(seen.insert({g.mx, g.my, g.mz}).second);
  }
  for (const GVector& g : sphere.gvectors()) {
    ASSERT_TRUE(seen.contains({-g.mx, -g.my, -g.mz}))
        << g.mx << "," << g.my << "," << g.mz;
  }
}

TEST_P(SphereSweep, SortedByShell) {
  const Cell cell{10.0};
  const GSphere sphere(cell, GetParam());
  long prev = -1;
  for (const GVector& g : sphere.gvectors()) {
    ASSERT_GE(g.m2, prev);
    prev = g.m2;
  }
  EXPECT_EQ(sphere.gvectors()[0].m2, 0);  // Gamma first
}

INSTANTIATE_TEST_SUITE_P(Cutoffs, SphereSweep,
                         ::testing::Values(2.0, 5.0, 10.0, 20.0, 40.0));

TEST(Grid, PaperWorkloadDimensions) {
  // ecut 80 Ry, alat 20 bohr: mmax = 28 -> 2*28+1 = 57 -> good size 60.
  const GridDims dims = fx::pw::wave_grid(Cell{20.0}, 80.0);
  EXPECT_EQ(dims.nx, 60U);
  EXPECT_EQ(dims.ny, 60U);
  EXPECT_EQ(dims.nz, 60U);
  EXPECT_EQ(dims.volume(), 216000U);
}

TEST(Grid, HoldsTheWholeSphereUniquely) {
  const Cell cell{10.0};
  const double ecut = 15.0;
  const GSphere sphere(cell, ecut);
  const GridDims dims = fx::pw::wave_grid(cell, ecut);
  std::set<std::size_t> used;
  for (const GVector& g : sphere.gvectors()) {
    const std::size_t idx = dims.index_of(g.mx, g.my, g.mz);
    ASSERT_LT(idx, dims.volume());
    ASSERT_TRUE(used.insert(idx).second) << "grid aliasing";
  }
}

TEST(Grid, FoldWrapsNegatives) {
  EXPECT_EQ(GridDims::fold(0, 10), 0U);
  EXPECT_EQ(GridDims::fold(3, 10), 3U);
  EXPECT_EQ(GridDims::fold(-1, 10), 9U);
  EXPECT_EQ(GridDims::fold(-10, 10), 0U);
  EXPECT_EQ(GridDims::fold(12, 10), 2U);
}

TEST(Wavefunction, DeterministicAndBandDependent) {
  const GVector g{1, -2, 3, 14};
  const auto c1 = fx::pw::wf_coefficient(5, g);
  const auto c2 = fx::pw::wf_coefficient(5, g);
  EXPECT_EQ(c1, c2);
  EXPECT_NE(fx::pw::wf_coefficient(6, g), c1);
  const GVector h{1, -2, 4, 21};
  EXPECT_NE(fx::pw::wf_coefficient(5, h), c1);
}

TEST(Wavefunction, DecaysWithShell) {
  const GVector g0{0, 0, 0, 0};
  const GVector gfar{20, 20, 20, 1200};
  EXPECT_LT(std::abs(fx::pw::wf_coefficient(0, gfar)),
            1.0 / (1.0 + 1200.0) + 1e-12);
  EXPECT_LE(std::abs(fx::pw::wf_coefficient(0, g0)), std::sqrt(2.0));
}

TEST(Potential, DeterministicSmoothBounded) {
  const GridDims dims{12, 12, 12};
  for (std::size_t ix = 0; ix < dims.nx; ++ix) {
    for (std::size_t iy = 0; iy < dims.ny; ++iy) {
      for (std::size_t iz = 0; iz < dims.nz; ++iz) {
        const double v = fx::pw::potential_value(ix, iy, iz, dims);
        ASSERT_EQ(v, fx::pw::potential_value(ix, iy, iz, dims));
        ASSERT_GT(v, 0.0);  // strictly positive (1 - 0.25 - 0.15 - 0.1 = 0.5)
        ASSERT_LT(v, 2.0);
      }
    }
  }
}

TEST(Grid, DenseGridIsRoughlyTwiceTheWaveGrid) {
  const Cell cell{20.0};
  const GridDims wave = fx::pw::wave_grid(cell, 80.0);
  const GridDims dense = fx::pw::dense_grid(cell, 80.0);
  EXPECT_EQ(wave.nx, 60U);
  EXPECT_GE(dense.nx, 2 * 56U);  // 2*floor(2*28.47)+1 = 113 -> good size
  EXPECT_EQ(dense.nx, 120U);
  // The dense grid holds every product G1 +/- G2 of wave-sphere vectors.
  const GSphere sphere(cell, 80.0);
  EXPECT_GE(dense.nx, static_cast<std::size_t>(4 * sphere.mmax()) + 1U);
}

TEST(Grid, OrthorhombicCellsGetAnisotropicGrids) {
  const Cell cell{16.0, 8.0, 12.0};
  const GridDims dims = fx::pw::wave_grid(cell, 20.0);
  EXPECT_GT(dims.nx, dims.ny);  // longer edge -> more Miller indices
  EXPECT_GT(dims.nx, dims.nz);
  EXPECT_GT(dims.nz, dims.ny);
}

TEST(Sphere, OrthorhombicSphereIsEllipsoidal) {
  const Cell cell{16.0, 8.0, 12.0};
  const GSphere sphere(cell, 20.0);
  int max_x = 0;
  int max_y = 0;
  for (const GVector& g : sphere.gvectors()) {
    max_x = std::max(max_x, std::abs(g.mx));
    max_y = std::max(max_y, std::abs(g.my));
  }
  EXPECT_GT(max_x, max_y);  // more reachable indices along the long edge
  // Every vector respects the physical cutoff.
  for (const GVector& g : sphere.gvectors()) {
    ASSERT_LE(cell.g2(g.mx, g.my, g.mz), 20.0 * (1.0 + 1e-9));
  }
}

}  // namespace
