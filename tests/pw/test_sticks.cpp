// Stick decomposition: completeness, balance, determinism; plane
// distribution invariants.
#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

#include "pw/gvectors.hpp"
#include "pw/lattice.hpp"
#include "pw/sticks.hpp"

namespace {

using fx::pw::Cell;
using fx::pw::GSphere;
using fx::pw::GVector;
using fx::pw::PlaneDist;
using fx::pw::Stick;
using fx::pw::StickMap;

class StickSweep : public ::testing::TestWithParam<int> {
 protected:
  StickSweep() : sphere_(Cell{10.0}, 20.0), map_(sphere_, GetParam()) {}
  GSphere sphere_;
  StickMap map_;
};

TEST_P(StickSweep, SticksPartitionTheSphere) {
  std::size_t total = 0;
  std::set<std::pair<int, int>> columns;
  for (const Stick& s : map_.sticks()) {
    ASSERT_GT(s.ng, 0U);
    ASSERT_TRUE(columns.insert({s.mx, s.my}).second) << "duplicate stick";
    total += s.ng;
  }
  EXPECT_EQ(total, sphere_.size());
  EXPECT_EQ(map_.stick_ordered_g().size(), sphere_.size());
}

TEST_P(StickSweep, StickRunsAreContiguousAndSortedByMz) {
  for (const Stick& s : map_.sticks()) {
    int prev_mz = -1000000;
    for (std::size_t i = 0; i < s.ng; ++i) {
      const GVector& g = map_.stick_ordered_g()[s.g_offset + i];
      ASSERT_EQ(g.mx, s.mx);
      ASSERT_EQ(g.my, s.my);
      ASSERT_GT(g.mz, prev_mz);
      prev_mz = g.mz;
    }
  }
}

TEST_P(StickSweep, OwnershipIsConsistentAndComplete) {
  const int nproc = GetParam();
  std::size_t assigned = 0;
  for (int r = 0; r < nproc; ++r) {
    for (std::size_t s : map_.sticks_of(r)) {
      ASSERT_EQ(map_.owner(s), r);
    }
    assigned += map_.sticks_of(r).size();
  }
  EXPECT_EQ(assigned, map_.num_sticks());
}

TEST_P(StickSweep, GreedyBalanceIsTight) {
  const int nproc = GetParam();
  std::size_t total = 0;
  std::size_t mx = 0;
  std::size_t mn = sphere_.size();
  for (int r = 0; r < nproc; ++r) {
    std::size_t ng = 0;
    for (std::size_t s : map_.sticks_of(r)) ng += map_.sticks()[s].ng;
    ASSERT_EQ(ng, map_.ng_of(r));
    total += ng;
    mx = std::max(mx, ng);
    mn = std::min(mn, ng);
  }
  EXPECT_EQ(total, sphere_.size());
  if (map_.num_sticks() >= static_cast<std::size_t>(nproc)) {
    // Greedy longest-first: imbalance bounded by the largest stick.
    std::size_t longest = 0;
    for (const Stick& s : map_.sticks()) longest = std::max(longest, s.ng);
    EXPECT_LE(mx - mn, longest);
  }
}

TEST_P(StickSweep, DeterministicAcrossConstructions) {
  const StickMap again(sphere_, GetParam());
  ASSERT_EQ(again.num_sticks(), map_.num_sticks());
  for (std::size_t s = 0; s < map_.num_sticks(); ++s) {
    ASSERT_EQ(again.owner(s), map_.owner(s));
    ASSERT_EQ(again.sticks()[s].g_offset, map_.sticks()[s].g_offset);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, StickSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(StickMap, SingleRankOwnsEverything) {
  const GSphere sphere(Cell{8.0}, 10.0);
  const StickMap map(sphere, 1);
  EXPECT_EQ(map.ng_of(0), sphere.size());
  EXPECT_EQ(map.sticks_of(0).size(), map.num_sticks());
}

TEST(StickMap, MoreRanksThanSticks) {
  const GSphere sphere(Cell{4.0}, 1.5);  // tiny sphere, few sticks
  const StickMap map(sphere, 32);
  std::size_t total = 0;
  for (int r = 0; r < 32; ++r) total += map.ng_of(r);
  EXPECT_EQ(total, sphere.size());
}

class PlaneSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(PlaneSweep, BlocksPartitionPlanes) {
  const auto [nz, nproc] = GetParam();
  const PlaneDist dist(nz, nproc);
  std::size_t total = 0;
  for (int r = 0; r < nproc; ++r) {
    total += dist.count(r);
    if (r > 0) {
      EXPECT_EQ(dist.first(r), dist.first(r - 1) + dist.count(r - 1));
    }
    // Balance: counts differ by at most one.
    EXPECT_LE(dist.count(r), nz / static_cast<std::size_t>(nproc) + 1);
  }
  EXPECT_EQ(total, nz);
  for (std::size_t iz = 0; iz < nz; ++iz) {
    const int r = dist.owner(iz);
    EXPECT_GE(iz, dist.first(r));
    EXPECT_LT(iz, dist.first(r) + dist.count(r));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PlaneSweep,
    ::testing::Values(std::tuple{60UL, 1}, std::tuple{60UL, 4},
                      std::tuple{60UL, 7}, std::tuple{60UL, 8},
                      std::tuple{5UL, 8},  // more ranks than planes
                      std::tuple{1UL, 1}, std::tuple{17UL, 3}));

TEST(PlaneDist, MoreRanksThanPlanesLeavesIdleRanks) {
  const PlaneDist dist(3, 8);
  int nonempty = 0;
  for (int r = 0; r < 8; ++r) {
    if (dist.count(r) > 0) ++nonempty;
  }
  EXPECT_EQ(nonempty, 3);
}

}  // namespace
