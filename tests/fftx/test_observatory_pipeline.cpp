// End-to-end observatory: the real pipeline feeding the online observatory
// through its existing spans and comm observer, with faults injected by
// the simmpi fault plan -- a stalled rank must produce a straggler flag
// naming (iteration, rank, phase), a compute bit flip must turn into an
// incident with a flight-recorder dump, and strict mode must turn flags
// into a lockstep failure.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/json.hpp"
#include "fftx/pipeline.hpp"
#include "simmpi/runtime.hpp"
#include "trace/observatory.hpp"
#include "trace/phases.hpp"

namespace {

using fx::core::SdcError;
using fx::fftx::AbftMode;
using fx::fftx::BandFftPipeline;
using fx::fftx::Descriptor;
using fx::fftx::PipelineConfig;
using fx::fftx::PipelineMode;
using fx::mpi::Comm;
using fx::mpi::CommOpKind;
using fx::mpi::RunOptions;
using fx::mpi::Runtime;
using fx::pw::Cell;
using fx::trace::Observatory;
using fx::trace::ObsMode;

constexpr double kAlat = 8.0;
constexpr double kEcut = 8.0;
constexpr int kBands = 8;
constexpr int kProc = 4;
constexpr int kTg = 2;

RunOptions quiet_options() {
  RunOptions opts;
  opts.watchdog.window_ms = 60000.0;
  return opts;
}

void run_pipeline(const RunOptions& opts, AbftMode abft = AbftMode::Off) {
  auto desc =
      std::make_shared<const Descriptor>(Cell{kAlat}, kEcut, kProc, kTg);
  Runtime::run(kProc, opts, [&](Comm& world) {
    PipelineConfig cfg;
    cfg.num_bands = kBands;
    cfg.mode = PipelineMode::Original;
    cfg.abft = abft;
    // Pin the staged blocking exchanges: the stall/flip injections below
    // target op indices of this exact path, so environment overrides
    // (e.g. the CI fused-exchange sweep) must not leak in.
    cfg.fused_exchange = false;
    cfg.overlap_exchange = false;
    cfg.guard_exchanges = false;
    BandFftPipeline pipe(world, desc, cfg);
    pipe.initialize_bands();
    pipe.run();
  });
}

class ObservatoryPipelineTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Observatory::global().configure(ObsMode::Off);
  }
};

TEST_F(ObservatoryPipelineTest, CleanRunRecordsIterationsWithoutFlags) {
  auto& obs = Observatory::global();
  obs.configure(ObsMode::Watch);
  run_pipeline(quiet_options());
  // ntg = 2 processes bands in pairs: 8 bands -> 4 iterations.
  EXPECT_EQ(obs.iterations_done(), 4u);
  EXPECT_GT(obs.phase_records(), 0u);
  EXPECT_EQ(obs.straggler_flags(), 0u);
  EXPECT_EQ(obs.incidents(), 0u);
  const auto flight = obs.flight();
  ASSERT_EQ(flight.size(), 4u);
  for (const auto& rec : flight) {
    EXPECT_TRUE(rec.complete);
    EXPECT_EQ(rec.ranks.size(), static_cast<std::size_t>(kProc));
    EXPECT_GT(rec.load_balance, 0.0);
  }
}

TEST_F(ObservatoryPipelineTest, StreamingRunAttributesTaskQueueWait) {
  auto& obs = Observatory::global();
  obs.configure(ObsMode::Watch);
  auto desc =
      std::make_shared<const Descriptor>(Cell{kAlat}, kEcut, kProc, kTg);
  Runtime::run(kProc, quiet_options(), [&](Comm& world) {
    PipelineConfig cfg;
    cfg.num_bands = kBands;
    cfg.mode = PipelineMode::Streaming;
    cfg.nthreads = 2;
    cfg.stream_bands = 4;       // 4 bands in flight on 2 workers: tasks queue
    cfg.fused_exchange = true;  // split post/wait path
    BandFftPipeline pipe(world, desc, cfg);
    pipe.initialize_bands();
    pipe.run();
  });
  // All 4 iterations complete even though they ran overlapped, and the
  // TaskWait pseudo-phase (ready-but-unscheduled queue time reported by the
  // runtime's on_queue_wait observer) lands in the per-rank sched bucket.
  EXPECT_EQ(obs.iterations_done(), 4u);
  const auto flight = obs.flight();
  ASSERT_EQ(flight.size(), 4u);
  double sched = 0.0;
  for (const auto& rec : flight) {
    EXPECT_TRUE(rec.complete);
    ASSERT_EQ(rec.ranks.size(), static_cast<std::size_t>(kProc));
    for (const auto& rr : rec.ranks) sched += rr.sched_s;
  }
  EXPECT_GT(sched, 0.0) << "no TaskWait time attributed to any iteration";
}

TEST_F(ObservatoryPipelineTest, StalledRankIsFlaggedAsExchangeStraggler) {
  auto& obs = Observatory::global();
  obs.configure(ObsMode::Watch);
  RunOptions opts = quiet_options();
  // Rank 2's 4th Alltoallv -- the unpack exchange of the first iteration,
  // on the pack communicator pairing world ranks {2, 3} -- sleeps 80 ms
  // inside the timed exchange window: orders of magnitude above this
  // workload's per-iteration time.
  opts.faults.stall_rank = 2;
  opts.faults.stall_op = 3;
  opts.faults.stall_ms = 80.0;
  opts.faults.only_kind = static_cast<int>(CommOpKind::Alltoallv);
  run_pipeline(opts);
  EXPECT_GE(obs.straggler_flags(), 1u);
  // The stalled collective is a rendezvous: the stalled rank's window and
  // its pair peer's wait are the same 80 ms, so the event stream resolves
  // the culprit to the stalled pair {2, 3}, not to one rank -- but the
  // verdict must land on iteration 0 (where the stall fired), name the
  // exchange pseudo-phase (no compute span grew), and carry the injected
  // magnitude.  Later iterations may additionally flag cascade victims
  // (ranks 0/1 waiting on the late pair), so we assert on the stalled
  // iteration's record, not on the most recent flag.
  const auto flight = obs.flight();
  const auto it = std::find_if(flight.begin(), flight.end(),
                               [](const auto& r) { return r.iter == 0; });
  ASSERT_NE(it, flight.end());
  EXPECT_TRUE(it->complete);
  EXPECT_TRUE(it->straggler_rank == 2 || it->straggler_rank == 3)
      << "flagged rank " << it->straggler_rank;
  EXPECT_EQ(it->straggler_phase, fx::trace::kNumPhaseKinds);  // "exchange"
  const auto& pair_ranks = it->ranks;
  ASSERT_EQ(pair_ranks.size(), 4u);
  EXPECT_GT(pair_ranks[2].comm_s + pair_ranks[3].comm_s, 0.100);
}

TEST_F(ObservatoryPipelineTest, SdcVerdictDumpsFlightRecorder) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "fx_obs_pipeline_flight";
  std::filesystem::remove_all(dir);
  setenv("FFTX_TRACE_DIR", dir.string().c_str(), 1);
  auto& obs = Observatory::global();
  obs.configure(ObsMode::Watch);

  RunOptions faulty = quiet_options();
  faulty.faults.flip_rank = 1;
  faulty.faults.flip_op = 5;
  EXPECT_THROW(run_pipeline(faulty, AbftMode::Detect), SdcError);
  unsetenv("FFTX_TRACE_DIR");

  // The SdcError verdict routed through core::emit_incident before the
  // throw: counted, remembered, and flushed as obs_flight_<n>.json.
  EXPECT_GE(obs.incidents(), 1u);
  bool dumped = false;
  ASSERT_TRUE(std::filesystem::is_directory(dir));
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.path().filename().string().starts_with("obs_flight_")) {
      continue;
    }
    dumped = true;
    const auto doc = fx::core::json::load_file(entry.path().string());
    const auto* incidents = doc.find("incidents");
    ASSERT_NE(incidents, nullptr);
    ASSERT_FALSE(incidents->as_array().empty());
    EXPECT_NE(incidents->as_array()[0].as_string().find("abft: sdc verdict"),
              std::string::npos);
    // The dump carries the iterations leading up to the verdict, with
    // per-rank, per-phase attribution -- the incident context.
    const auto* iters = doc.find("iterations");
    ASSERT_NE(iters, nullptr);
    EXPECT_FALSE(iters->as_array().empty());
  }
  EXPECT_TRUE(dumped);
  std::filesystem::remove_all(dir);
}

TEST_F(ObservatoryPipelineTest, StrictModeFailsTheRunOnInjectedStall) {
  auto& obs = Observatory::global();
  obs.configure(ObsMode::Strict);
  RunOptions opts = quiet_options();
  opts.faults.stall_rank = 1;
  opts.faults.stall_op = 3;
  opts.faults.stall_ms = 80.0;
  opts.faults.only_kind = static_cast<int>(CommOpKind::Alltoallv);
  // strict_check runs after the closing barrier on shared counters, so
  // every rank throws the same verdict -- no hang, a clean failure.
  EXPECT_THROW(run_pipeline(opts), fx::core::Error);

  // The same injection under watch only flags.
  obs.configure(ObsMode::Watch);
  EXPECT_NO_THROW(run_pipeline(opts));
  EXPECT_GE(obs.straggler_flags(), 1u);
}

}  // namespace
