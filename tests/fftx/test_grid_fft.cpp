// Dense-grid distributed 3D FFT against the serial oracle, across rank
// counts and grid shapes, plus layout invariants.
#include "fftx/grid_fft.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/rng.hpp"
#include "fft/dft_ref.hpp"
#include "fft/plan3d.hpp"
#include "simmpi/runtime.hpp"

namespace {

using fx::core::Rng;
using fx::fft::cplx;
using fx::fftx::GridFft;
using fx::pw::GridDims;

std::vector<cplx> random_grid(const GridDims& dims, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cplx> g(dims.volume());
  for (auto& v : g) v = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return g;
}

class GridFftSweep : public ::testing::TestWithParam<
                         std::tuple<int, std::size_t, std::size_t, std::size_t>> {};

TEST_P(GridFftSweep, MatchesSerial3dTransform) {
  const auto [P, nx, ny, nz] = GetParam();
  const GridDims dims{nx, ny, nz};
  const auto input = random_grid(dims, nx * 100 + ny * 10 + nz);

  // Serial oracle: unnormalized backward 3D transform.
  std::vector<cplx> want(input);
  fx::fft::Fft3d serial(nx, ny, nz, fx::fft::Direction::Backward);
  serial.execute(want.data(), want.data());

  std::vector<cplx> got(dims.volume(), cplx{0.0, 0.0});
  fx::mpi::Runtime::run(P, [&](fx::mpi::Comm& comm) {
    GridFft grid(comm, dims);
    fx::fft::Workspace ws;
    const int me = comm.rank();

    // Scatter the reciprocal data into my pencils [col][iz];
    // column c = ix + nx*iy at grid index ix + nx*(iy + ny*iz).
    std::vector<cplx> pencils(grid.pencil_elems());
    for (std::size_t c = 0; c < grid.ncols(me); ++c) {
      const std::size_t col = grid.col_first(me) + c;
      for (std::size_t iz = 0; iz < nz; ++iz) {
        pencils[c * nz + iz] = input[col + dims.plane() * iz];
      }
    }
    std::vector<cplx> planes(grid.plane_elems());
    grid.to_real(pencils, planes, ws);

    // Collect my planes into the shared result (disjoint writes).
    for (std::size_t iz = 0; iz < grid.nplanes(me); ++iz) {
      const std::size_t gz = grid.plane_first(me) + iz;
      for (std::size_t xy = 0; xy < dims.plane(); ++xy) {
        got[gz * dims.plane() + xy] = planes[iz * dims.plane() + xy];
      }
    }
  });

  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(std::abs(got[i] - want[i]), 0.0, 1e-9) << "i=" << i;
  }
}

TEST_P(GridFftSweep, RoundTripIsIdentity) {
  const auto [P, nx, ny, nz] = GetParam();
  const GridDims dims{nx, ny, nz};
  const auto input = random_grid(dims, nx + ny + nz + 5000);

  double max_err = -1.0;
  fx::mpi::Runtime::run(P, [&](fx::mpi::Comm& comm) {
    GridFft grid(comm, dims);
    fx::fft::Workspace ws;
    const int me = comm.rank();

    std::vector<cplx> pencils(grid.pencil_elems());
    for (std::size_t c = 0; c < grid.ncols(me); ++c) {
      const std::size_t col = grid.col_first(me) + c;
      for (std::size_t iz = 0; iz < nz; ++iz) {
        pencils[c * nz + iz] = input[col + dims.plane() * iz];
      }
    }
    std::vector<cplx> planes(grid.plane_elems());
    grid.to_real(pencils, planes, ws, /*tag=*/1);
    std::vector<cplx> back(grid.pencil_elems());
    grid.to_recip(planes, back, ws, /*tag=*/2);

    double err = 0.0;
    for (std::size_t k = 0; k < back.size(); ++k) {
      err = std::max(err, std::abs(back[k] - pencils[k]));
    }
    double global = 0.0;
    comm.allreduce(&err, &global, 1, fx::mpi::ReduceOp::Max);
    if (me == 0) max_err = global;
  });
  EXPECT_GE(max_err, 0.0);
  EXPECT_LT(max_err, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GridFftSweep,
    ::testing::Values(std::tuple{1, 6UL, 6UL, 6UL},
                      std::tuple{2, 8UL, 8UL, 8UL},
                      std::tuple{3, 6UL, 5UL, 4UL},   // anisotropic, odd P
                      std::tuple{4, 8UL, 6UL, 10UL},
                      std::tuple{7, 12UL, 12UL, 12UL},  // P !| nz
                      std::tuple{8, 4UL, 4UL, 4UL}));   // P == nz

TEST(GridFft, LayoutPartitionsColumnsAndPlanes) {
  const GridDims dims{10, 6, 8};
  fx::mpi::Runtime::run(3, [&](fx::mpi::Comm& comm) {
    GridFft grid(comm, dims);
    std::size_t cols = 0;
    std::size_t planes = 0;
    for (int r = 0; r < 3; ++r) {
      cols += grid.ncols(r);
      planes += grid.nplanes(r);
    }
    EXPECT_EQ(cols, dims.plane());
    EXPECT_EQ(planes, dims.nz);
    EXPECT_EQ(grid.pencil_elems(), grid.ncols(comm.rank()) * dims.nz);
  });
}

TEST(GridFft, BufferSizeMismatchThrows) {
  fx::mpi::Runtime::run(1, [&](fx::mpi::Comm& comm) {
    GridFft grid(comm, GridDims{4, 4, 4});
    fx::fft::Workspace ws;
    std::vector<cplx> small(3);
    std::vector<cplx> planes(grid.plane_elems());
    EXPECT_THROW(grid.to_real(small, planes, ws), fx::core::Error);
  });
}

}  // namespace
