// Regression stress for the TaskPerStep sliding-iteration window.
//
// Without the window, two ranks can block all their workers in collectives
// of disjoint iteration sets (every iteration's pack task is ready from
// the start, so FIFO dispatch lets a rank race ahead arbitrarily) -- an
// intermittent, load-sensitive deadlock.  These runs maximize the skew
// pressure: many iterations, few workers, several ranks, repeated.
#include <gtest/gtest.h>

#include <memory>

#include "fftx/pipeline.hpp"
#include "fftx/reference.hpp"
#include "simmpi/runtime.hpp"

namespace {

using fx::fftx::BandFftPipeline;
using fx::fftx::Descriptor;
using fx::fftx::PipelineConfig;
using fx::fftx::PipelineMode;
using fx::pw::Cell;

void run_stress(int nranks, int threads, int bands, PipelineMode mode) {
  auto desc = std::make_shared<const Descriptor>(Cell{6.0}, 6.0, nranks, 1);
  fx::mpi::Runtime::run(nranks, [&](fx::mpi::Comm& world) {
    PipelineConfig cfg;
    cfg.num_bands = bands;
    cfg.mode = mode;
    cfg.nthreads = threads;
    BandFftPipeline pipe(world, desc, cfg);
    pipe.initialize_bands();
    pipe.run();
    // Spot-check the last band stayed correct under the pressure.
    const auto want =
        fx::fftx::reference_band_output(*desc, bands - 1, true);
    const auto index = desc->world_g_index(world.rank());
    const auto mine = pipe.band(bands - 1);
    for (std::size_t k = 0; k < index.size(); ++k) {
      ASSERT_NEAR(std::abs(mine[k] - want[index[k]]), 0.0, 1e-12);
    }
  });
}

TEST(WindowStress, TaskPerStepManyIterationsFewWorkers) {
  for (int rep = 0; rep < 6; ++rep) {
    run_stress(/*nranks=*/4, /*threads=*/2, /*bands=*/24,
               PipelineMode::TaskPerStep);
  }
}

TEST(WindowStress, TaskPerStepSingleWorker) {
  // window == 1: strictly serial iterations, must still complete.
  run_stress(3, 1, 12, PipelineMode::TaskPerStep);
}

TEST(WindowStress, TaskPerFftManyBands) {
  for (int rep = 0; rep < 4; ++rep) {
    run_stress(3, 2, 30, PipelineMode::TaskPerFft);
  }
}

TEST(WindowStress, CombinedUnderPressure) {
  for (int rep = 0; rep < 4; ++rep) {
    run_stress(2, 3, 24, PipelineMode::Combined);
  }
}

}  // namespace
