// Descriptor invariants: the two-layer layout must tile the sphere and the
// grid exactly, for every (nproc, ntg) combination.
#include "fftx/descriptor.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "core/error.hpp"
#include "pw/wavefunction.hpp"

namespace {

using fx::fftx::Descriptor;
using fx::pw::Cell;

class LayoutSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {  // (P, T)
 protected:
  LayoutSweep()
      : desc_(Cell{8.0}, 8.0, std::get<0>(GetParam()), std::get<1>(GetParam())) {}
  Descriptor desc_;
};

TEST_P(LayoutSweep, BasicShape) {
  const auto [P, T] = GetParam();
  EXPECT_EQ(desc_.nproc(), P);
  EXPECT_EQ(desc_.ntg(), T);
  EXPECT_EQ(desc_.group_size(), P / T);
  for (int w = 0; w < P; ++w) {
    EXPECT_EQ(desc_.world_rank(desc_.group_rank_of(w), desc_.group_of(w)), w);
    EXPECT_LT(desc_.group_of(w), T);
    EXPECT_LT(desc_.group_rank_of(w), P / T);
  }
}

TEST_P(LayoutSweep, WorldIndicesPartitionTheSphere) {
  const auto [P, T] = GetParam();
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (int w = 0; w < P; ++w) {
    const auto idx = desc_.world_g_index(w);
    EXPECT_EQ(idx.size(), desc_.ng_world(w));
    for (std::size_t i : idx) {
      ASSERT_TRUE(seen.insert(i).second) << "duplicate G index " << i;
    }
    total += idx.size();
  }
  EXPECT_EQ(total, desc_.sphere().size());
}

TEST_P(LayoutSweep, GroupSticksAreTheUnionOfPackComm) {
  const auto [P, T] = GetParam();
  const int R = P / T;
  std::size_t total_sticks = 0;
  std::size_t total_ng = 0;
  for (int b = 0; b < R; ++b) {
    std::size_t ng = 0;
    std::set<std::size_t> mine;
    for (std::size_t s : desc_.group_sticks(b)) {
      ASSERT_TRUE(mine.insert(s).second);
      // The world owner of s must be a member of pack comm b.
      const int owner = desc_.world_sticks().owner(s);
      ASSERT_EQ(owner / T, b);
      ng += desc_.world_sticks().sticks()[s].ng;
    }
    EXPECT_EQ(ng, desc_.ng_group(b));
    EXPECT_EQ(mine.size(), desc_.nsticks_group(b));
    total_sticks += mine.size();
    total_ng += ng;
  }
  EXPECT_EQ(total_sticks, desc_.total_sticks());
  EXPECT_EQ(total_ng, desc_.sphere().size());
}

TEST_P(LayoutSweep, PencilIndexIsInjectivePerGroupRank) {
  const auto [P, T] = GetParam();
  const int R = P / T;
  for (int b = 0; b < R; ++b) {
    const auto pidx = desc_.pencil_index(b);
    EXPECT_EQ(pidx.size(), desc_.ng_group(b));
    std::set<std::size_t> seen;
    for (std::size_t off : pidx) {
      ASSERT_LT(off, desc_.pencil_size(b));
      ASSERT_TRUE(seen.insert(off).second) << "pencil aliasing";
    }
  }
}

TEST_P(LayoutSweep, PackCountsMatchWorldCounts) {
  const auto [P, T] = GetParam();
  const int R = P / T;
  for (int b = 0; b < R; ++b) {
    std::size_t sum = 0;
    for (int m = 0; m < T; ++m) {
      EXPECT_EQ(desc_.pack_count(b, m),
                desc_.ng_world(desc_.world_rank(b, m)));
      sum += desc_.pack_count(b, m);
    }
    EXPECT_EQ(sum, desc_.ng_group(b));
  }
}

TEST_P(LayoutSweep, PlanesPartitionTheGrid) {
  const auto [P, T] = GetParam();
  const int R = P / T;
  std::size_t planes = 0;
  for (int b = 0; b < R; ++b) planes += desc_.npz(b);
  EXPECT_EQ(planes, desc_.dims().nz);
}

TEST_P(LayoutSweep, StickXyOffsetsAreDistinctAndInPlane) {
  std::set<std::size_t> seen;
  for (std::size_t s = 0; s < desc_.total_sticks(); ++s) {
    const std::size_t xy = desc_.stick_xy(s);
    ASSERT_LT(xy, desc_.dims().plane());
    ASSERT_TRUE(seen.insert(xy).second) << "two sticks on one column";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, LayoutSweep,
    ::testing::Values(std::tuple{1, 1}, std::tuple{2, 1}, std::tuple{2, 2},
                      std::tuple{4, 1}, std::tuple{4, 2}, std::tuple{4, 4},
                      std::tuple{8, 2}, std::tuple{8, 4}, std::tuple{8, 8},
                      std::tuple{6, 3}, std::tuple{12, 4}));

TEST(Descriptor, PotentialSlabsTileTheGridConsistently) {
  const Descriptor desc(Cell{8.0}, 8.0, 4, 2);  // R = 2
  const auto& dims = desc.dims();
  std::vector<double> full;
  for (int b = 0; b < desc.group_size(); ++b) {
    std::vector<double> slab(desc.npz(b) * dims.plane());
    desc.fill_potential(b, slab);
    full.insert(full.end(), slab.begin(), slab.end());
  }
  ASSERT_EQ(full.size(), dims.volume());
  std::size_t pos = 0;
  for (std::size_t iz = 0; iz < dims.nz; ++iz) {
    for (std::size_t iy = 0; iy < dims.ny; ++iy) {
      for (std::size_t ix = 0; ix < dims.nx; ++ix) {
        ASSERT_DOUBLE_EQ(full[pos++],
                         fx::pw::potential_value(ix, iy, iz, dims));
      }
    }
  }
}

TEST(Descriptor, RejectsBadConfigs) {
  EXPECT_THROW(Descriptor(Cell{8.0}, 8.0, 4, 3), fx::core::Error);  // 3 !| 4
  EXPECT_THROW(Descriptor(Cell{8.0}, 8.0, 0, 1), fx::core::Error);
}

TEST(Descriptor, LayoutIsIndependentOfNtgAtWorldLevel) {
  // World stick distribution depends only on P; ntg only regroups.
  const Descriptor a(Cell{8.0}, 8.0, 8, 1);
  const Descriptor d(Cell{8.0}, 8.0, 8, 4);
  for (int w = 0; w < 8; ++w) {
    EXPECT_EQ(a.ng_world(w), d.ng_world(w));
  }
  EXPECT_EQ(a.dims().nx, d.dims().nx);
}

}  // namespace
