// Additional pipeline coverage: orthorhombic cells, trace integration with
// the POP analyzer on real runs, cross-mode instruction-accounting
// equality, and degenerate layouts.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>

#include "fftx/pipeline.hpp"
#include "fftx/reference.hpp"
#include "simmpi/runtime.hpp"
#include "trace/analysis.hpp"

namespace {

using fx::fft::cplx;
using fx::fftx::BandFftPipeline;
using fx::fftx::Descriptor;
using fx::fftx::PipelineConfig;
using fx::fftx::PipelineMode;
using fx::pw::Cell;

double run_and_check(const std::shared_ptr<const Descriptor>& desc,
                     PipelineMode mode, int nthreads, int bands,
                     fx::trace::Tracer* tracer = nullptr,
                     bool force_staged = false) {
  double worst = 0.0;
  fx::mpi::Runtime::run(desc->nproc(), [&](fx::mpi::Comm& world) {
    PipelineConfig cfg;
    cfg.num_bands = bands;
    cfg.mode = mode;
    cfg.nthreads = nthreads;
    if (force_staged) {
      // For tests that assert staged-path artifacts (marshalling trace
      // phases), regardless of FFTX_FUSED_EXCHANGE / FFTX_OVERLAP_EXCHANGE.
      cfg.fused_exchange = false;
      cfg.overlap_exchange = false;
    }
    BandFftPipeline pipe(world, desc, cfg, tracer);
    pipe.initialize_bands();
    pipe.run();
    const auto index = desc->world_g_index(world.rank());
    double err = 0.0;
    for (int n = 0; n < bands; ++n) {
      const auto want = fx::fftx::reference_band_output(*desc, n, true);
      const auto mine = pipe.band(n);
      for (std::size_t k = 0; k < index.size(); ++k) {
        err = std::max(err, std::abs(mine[k] - want[index[k]]));
      }
    }
    double global = 0.0;
    world.allreduce(&err, &global, 1, fx::mpi::ReduceOp::Max);
    if (world.rank() == 0) worst = global;
  });
  return worst;
}

TEST(Orthorhombic, AnisotropicCellThroughEveryMode) {
  // ax != ay != az: the grid is 8x6x10-ish and the sphere an ellipsoid.
  auto desc = std::make_shared<const Descriptor>(Cell{9.0, 7.0, 11.0}, 6.0,
                                                 /*nproc=*/2, /*ntg=*/1);
  EXPECT_NE(desc->dims().nx, desc->dims().ny);
  EXPECT_NE(desc->dims().ny, desc->dims().nz);
  EXPECT_LT(run_and_check(desc, PipelineMode::Original, 1, 4), 1e-12);
  EXPECT_LT(run_and_check(desc, PipelineMode::TaskPerFft, 3, 4), 1e-12);
  EXPECT_LT(run_and_check(desc, PipelineMode::TaskPerStep, 2, 4), 1e-12);
}

TEST(Orthorhombic, TaskGroupsOnAnisotropicCell) {
  auto desc = std::make_shared<const Descriptor>(Cell{9.0, 7.0, 11.0}, 6.0,
                                                 /*nproc=*/4, /*ntg=*/2);
  EXPECT_LT(run_and_check(desc, PipelineMode::Original, 1, 4), 1e-12);
}

TEST(Degenerate, SingleBandSingleRank) {
  auto desc = std::make_shared<const Descriptor>(Cell{8.0}, 8.0, 1, 1);
  EXPECT_LT(run_and_check(desc, PipelineMode::Original, 1, 1), 1e-12);
  EXPECT_LT(run_and_check(desc, PipelineMode::TaskPerFft, 2, 1), 1e-12);
}

TEST(Degenerate, MoreRanksThanPlanes) {
  // Grid ~5^3 but 8 ranks: several ranks own zero planes and zero sticks.
  auto desc = std::make_shared<const Descriptor>(Cell{6.0}, 4.0, 8, 1);
  EXPECT_LT(desc->dims().nz, 8U);
  EXPECT_LT(run_and_check(desc, PipelineMode::Original, 1, 2), 1e-12);
  EXPECT_LT(run_and_check(desc, PipelineMode::TaskPerFft, 2, 2), 1e-12);
}

TEST(TraceIntegration, PopFactorsAreSaneOnRealRuns) {
  auto desc = std::make_shared<const Descriptor>(Cell{8.0}, 8.0, 4, 2);
  fx::trace::Tracer tracer(4);
  run_and_check(desc, PipelineMode::Original, 1, 8, &tracer);

  const auto s = fx::trace::analyze_efficiency(tracer, 1.0);
  EXPECT_EQ(s.rows, 4);
  EXPECT_GT(s.runtime, 0.0);
  EXPECT_GT(s.total_compute, 0.0);
  EXPECT_GT(s.total_instructions, 0.0);
  EXPECT_GT(s.load_balance, 0.0);
  EXPECT_LE(s.load_balance, 1.0);
  EXPECT_GT(s.comm_efficiency, 0.0);
  EXPECT_LE(s.comm_efficiency, 1.0);
  EXPECT_LE(s.parallel_efficiency,
            s.load_balance * s.comm_efficiency + 1e-12);
}

TEST(TraceIntegration, InstructionTotalsEqualAcrossModes) {
  // The optimizations reschedule work; they must not change its amount
  // (instruction scalability ~100 % in both paper tables).
  auto desc = std::make_shared<const Descriptor>(Cell{8.0}, 8.0, 2, 1);
  auto total = [&](PipelineMode mode, int threads) {
    fx::trace::Tracer tracer(2);
    run_and_check(desc, mode, threads, 4, &tracer);
    double instr = 0.0;
    for (const auto& e : tracer.compute_events()) instr += e.instructions;
    return instr;
  };
  const double orig = total(PipelineMode::Original, 1);
  EXPECT_GT(orig, 0.0);
  EXPECT_NEAR(total(PipelineMode::TaskPerFft, 3), orig, 1e-6 * orig);
  EXPECT_NEAR(total(PipelineMode::TaskPerStep, 3), orig, 1e-6 * orig);
  EXPECT_NEAR(total(PipelineMode::Combined, 3), orig, 1e-6 * orig);
}

TEST(TraceIntegration, EveryPipelinePhaseAppearsInTrace) {
  auto desc = std::make_shared<const Descriptor>(Cell{8.0}, 8.0, 2, 2);
  fx::trace::Tracer tracer(2);
  run_and_check(desc, PipelineMode::Original, 1, 4, &tracer,
                /*force_staged=*/true);
  std::map<fx::trace::PhaseKind, int> seen;
  for (const auto& e : tracer.compute_events()) ++seen[e.phase];
  using PK = fx::trace::PhaseKind;
  for (PK p : {PK::Pack, PK::PsiPrep, PK::FftZ, PK::Scatter, PK::FftXy,
               PK::Vofr, PK::Unpack}) {
    EXPECT_GT(seen[p], 0) << to_string(p);
  }
}

}  // namespace
