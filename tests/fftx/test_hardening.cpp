// Pipeline hardening acceptance: an injected bit flip in a transpose
// exchange is detected by the checksum guard and recovered by retry,
// reproducing the fault-free result exactly; without the guard the same
// flip silently corrupts the output.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/error.hpp"
#include "core/metrics.hpp"
#include "fftx/guarded.hpp"
#include "fftx/pipeline.hpp"
#include "simmpi/runtime.hpp"

namespace {

using fx::core::CommError;
using fx::fft::cplx;
using fx::fftx::BandFftPipeline;
using fx::fftx::Descriptor;
using fx::fftx::PipelineConfig;
using fx::fftx::PipelineMode;
using fx::mpi::CommOpKind;
using fx::mpi::RunOptions;
using fx::pw::Cell;

constexpr double kAlat = 8.0;
constexpr double kEcut = 8.0;
constexpr int kBands = 4;
constexpr int kProc = 4;
constexpr int kTg = 2;

struct RunResult {
  std::vector<std::vector<cplx>> bands;
  std::uint64_t guard_retries = 0;
  std::uint64_t guard_exchanges = 0;
};

/// One pipeline run under `opts`, collecting every band and guard counters.
RunResult run_pipeline(const RunOptions& opts, bool guard) {
  auto desc =
      std::make_shared<const Descriptor>(Cell{kAlat}, kEcut, kProc, kTg);
  RunResult result;
  result.bands.assign(kBands, std::vector<cplx>(desc->sphere().size()));
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> exchanges{0};

  fx::mpi::Runtime::run(kProc, opts, [&](fx::mpi::Comm& world) {
    PipelineConfig cfg;
    cfg.num_bands = kBands;
    cfg.mode = PipelineMode::Original;
    cfg.guard_exchanges = guard;
    // These tests target the staged blocking Alltoallv (the fault plan
    // selects that kind); pin the path regardless of FFTX_FUSED_EXCHANGE /
    // FFTX_OVERLAP_EXCHANGE in the environment.
    cfg.fused_exchange = false;
    cfg.overlap_exchange = false;
    BandFftPipeline pipe(world, desc, cfg);
    pipe.initialize_bands();
    pipe.run();
    const auto index = desc->world_g_index(world.rank());
    for (int n = 0; n < kBands; ++n) {
      const auto mine = pipe.band(n);
      for (std::size_t k = 0; k < index.size(); ++k) {
        result.bands[static_cast<std::size_t>(n)][index[k]] = mine[k];
      }
    }
    retries.fetch_add(pipe.guard_retries());
    exchanges.fetch_add(pipe.guard_exchanges_done());
  });
  result.guard_retries = retries.load();
  result.guard_exchanges = exchanges.load();
  return result;
}

/// One bit flip in the first Alltoallv payload rank 0 receives.
RunOptions one_bit_flip() {
  RunOptions opts;
  opts.faults.corrupt_rank = 0;
  opts.faults.corrupt_op = 0;
  opts.faults.only_kind = static_cast<int>(CommOpKind::Alltoallv);
  return opts;
}

TEST(Hardening, GuardedExchangeRecoversFromInjectedBitFlip) {
  auto& reg = fx::core::MetricsRegistry::global();
  const std::uint64_t retries_before =
      reg.counter("fftx.guard.retries").value();
  const std::uint64_t failures_before =
      reg.counter("fftx.guard.checksum_failures").value();

  const RunResult clean = run_pipeline(RunOptions{}, /*guard=*/false);
  const RunResult healed = run_pipeline(one_bit_flip(), /*guard=*/true);

  EXPECT_GE(healed.guard_retries, 1U);  // the flip was detected and retried
  EXPECT_GT(healed.guard_exchanges, 0U);
  // The process-wide metrics must reflect the same recovery: a fault
  // injection run dumps nonzero retry and checksum-failure counters.
  EXPECT_GE(reg.counter("fftx.guard.retries").value(), retries_before + 1);
  EXPECT_GE(reg.counter("fftx.guard.checksum_failures").value(),
            failures_before + 1);
  for (int n = 0; n < kBands; ++n) {
    const auto& a = clean.bands[static_cast<std::size_t>(n)];
    const auto& b = healed.bands[static_cast<std::size_t>(n)];
    ASSERT_EQ(a, b) << "band " << n
                    << " differs from the fault-free result";
  }
}

TEST(Hardening, UnguardedBitFlipCorruptsTheResult) {
  // Sanity check that the injection is real: without the guard the same
  // flip must change the output (otherwise the recovery test is vacuous).
  const RunResult clean = run_pipeline(RunOptions{}, /*guard=*/false);
  const RunResult corrupted = run_pipeline(one_bit_flip(), /*guard=*/false);
  EXPECT_NE(clean.bands, corrupted.bands);
}

TEST(Hardening, GuardGivesUpAfterBoundedRetries) {
  RunOptions opts;
  opts.faults.corrupt_prob = 1.0;  // every Alltoallv payload, every retry
  opts.faults.only_kind = static_cast<int>(CommOpKind::Alltoallv);
  try {
    run_pipeline(opts, /*guard=*/true);
    FAIL() << "expected CommError";
  } catch (const CommError& e) {
    EXPECT_NE(std::string(e.what()).find("guarded alltoallv"),
              std::string::npos)
        << e.what();
  }
}

TEST(Hardening, GuardIsTransparentOnCleanRuns) {
  const RunResult plain = run_pipeline(RunOptions{}, /*guard=*/false);
  const RunResult guarded = run_pipeline(RunOptions{}, /*guard=*/true);
  EXPECT_EQ(plain.bands, guarded.bands);
  EXPECT_EQ(guarded.guard_retries, 0U);
  EXPECT_GT(guarded.guard_exchanges, 0U);
}

}  // namespace
