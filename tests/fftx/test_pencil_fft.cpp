// Pencil-decomposed 3D FFT against the serial oracle, across process-grid
// shapes and grid dimensions.
#include "fftx/pencil_fft.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/rng.hpp"
#include "fft/plan3d.hpp"
#include "simmpi/runtime.hpp"

namespace {

using fx::core::Rng;
using fx::fft::cplx;
using fx::fftx::PencilFft;
using fx::pw::GridDims;

std::vector<cplx> random_grid(const GridDims& dims, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cplx> g(dims.volume());
  for (auto& v : g) v = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return g;
}

struct Shape {
  int prows;
  int pcols;
  std::size_t nx;
  std::size_t ny;
  std::size_t nz;
};

class PencilSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(PencilSweep, MatchesSerial3dTransform) {
  const auto [prows, pcols, nx, ny, nz] = GetParam();
  const GridDims dims{nx, ny, nz};
  const auto input = random_grid(dims, nx * 37 + ny * 5 + nz);

  std::vector<cplx> want(input);
  fx::fft::Fft3d serial(nx, ny, nz, fx::fft::Direction::Backward);
  serial.execute(want.data(), want.data());

  std::vector<cplx> got(dims.volume(), cplx{0.0, 0.0});
  fx::mpi::Runtime::run(prows * pcols, [&](fx::mpi::Comm& world) {
    PencilFft fft(world, dims, prows, pcols);
    fx::fft::Workspace ws;
    const int r = fft.row();
    const int c = fft.col();

    // Load my Z-pencils [ix][iy][iz] from grid index ix + nx*(iy + ny*iz).
    std::vector<cplx> zp(fft.zpencil_elems());
    for (std::size_t ix = 0; ix < fft.nx_of(r); ++ix) {
      for (std::size_t iy = 0; iy < fft.ny_of(c); ++iy) {
        for (std::size_t iz = 0; iz < nz; ++iz) {
          zp[(ix * fft.ny_of(c) + iy) * nz + iz] =
              input[fft.x0_of(r) + ix +
                    nx * (fft.y0_of(c) + iy + ny * iz)];
        }
      }
    }
    std::vector<cplx> xp(fft.xpencil_elems());
    fft.to_real(zp, xp, ws);

    // Scatter my X-pencils [iy][iz][ix] into the shared result.
    for (std::size_t iy = 0; iy < fft.ny2_of(r); ++iy) {
      for (std::size_t iz = 0; iz < fft.nz_of(c); ++iz) {
        for (std::size_t ix = 0; ix < nx; ++ix) {
          got[ix + nx * (fft.y20_of(r) + iy + ny * (fft.z0_of(c) + iz))] =
              xp[(iy * fft.nz_of(c) + iz) * nx + ix];
        }
      }
    }
  });

  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_NEAR(std::abs(got[i] - want[i]), 0.0, 1e-9) << "i=" << i;
  }
}

TEST_P(PencilSweep, RoundTripIsIdentity) {
  const auto [prows, pcols, nx, ny, nz] = GetParam();
  const GridDims dims{nx, ny, nz};
  const auto input = random_grid(dims, nx + 2 * ny + 3 * nz + 999);

  double max_err = -1.0;
  fx::mpi::Runtime::run(prows * pcols, [&](fx::mpi::Comm& world) {
    PencilFft fft(world, dims, prows, pcols);
    fx::fft::Workspace ws;
    const int r = fft.row();
    const int c = fft.col();

    std::vector<cplx> zp(fft.zpencil_elems());
    for (std::size_t ix = 0; ix < fft.nx_of(r); ++ix) {
      for (std::size_t iy = 0; iy < fft.ny_of(c); ++iy) {
        for (std::size_t iz = 0; iz < nz; ++iz) {
          zp[(ix * fft.ny_of(c) + iy) * nz + iz] =
              input[fft.x0_of(r) + ix +
                    nx * (fft.y0_of(c) + iy + ny * iz)];
        }
      }
    }
    std::vector<cplx> xp(fft.xpencil_elems());
    fft.to_real(zp, xp, ws, /*tag=*/10);
    std::vector<cplx> back(fft.zpencil_elems());
    fft.to_recip(xp, back, ws, /*tag=*/11);

    double err = 0.0;
    for (std::size_t k = 0; k < back.size(); ++k) {
      err = std::max(err, std::abs(back[k] - zp[k]));
    }
    double global = 0.0;
    world.allreduce(&err, &global, 1, fx::mpi::ReduceOp::Max);
    if (world.rank() == 0) max_err = global;
  });
  EXPECT_GE(max_err, 0.0);
  EXPECT_LT(max_err, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PencilSweep,
    ::testing::Values(Shape{1, 1, 6, 6, 6}, Shape{2, 2, 8, 8, 8},
                      Shape{1, 3, 6, 9, 6},   // 1D row decomposition
                      Shape{3, 1, 9, 6, 6},   // 1D column decomposition
                      Shape{2, 3, 8, 9, 10},  // anisotropic, uneven blocks
                      Shape{3, 2, 7, 5, 6},   // odd sizes
                      Shape{4, 2, 4, 8, 6})); // blocks of size 1 along x

TEST(PencilFft, RejectsMismatchedProcessGrid) {
  fx::mpi::Runtime::run(4, [&](fx::mpi::Comm& world) {
    EXPECT_THROW(PencilFft(world, GridDims{4, 4, 4}, 3, 2), fx::core::Error);
  });
}

}  // namespace
