// Algorithm-based fault tolerance acceptance: clean runs never flag
// (zero false positives across exchange variants and wire formats),
// injected compute bit flips are detected at every flip opportunity,
// detect mode throws in lockstep, and repair mode restores the output
// bit-exactly through a surgical band replay -- no communicator shrink.
#include "fftx/abft.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <complex>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/metrics.hpp"
#include "fft/checksum.hpp"
#include "fft/gamma.hpp"
#include "fftx/pipeline.hpp"
#include "fftx/recovery.hpp"
#include "fftx/reference.hpp"
#include "simmpi/runtime.hpp"
#include "simmpi/wire.hpp"

namespace {

using fx::core::SdcError;
using fx::fft::cplx;
using fx::fftx::AbftMode;
using fx::fftx::BandFftPipeline;
using fx::fftx::Descriptor;
using fx::fftx::PipelineConfig;
using fx::fftx::PipelineMode;
using fx::fftx::RecoveryConfig;
using fx::fftx::RecoveryDriver;
using fx::mpi::Comm;
using fx::mpi::RunOptions;
using fx::mpi::Runtime;
using fx::mpi::WireFormat;
using fx::pw::Cell;

constexpr double kAlat = 8.0;
constexpr double kEcut = 8.0;
constexpr int kBands = 8;
constexpr int kProc = 4;
constexpr int kTg = 2;

RunOptions quiet_options() {
  RunOptions opts;
  opts.watchdog.window_ms = 60000.0;
  return opts;
}

// ---------------------------------------------------------------------------
// Mode parsing and env validation
// ---------------------------------------------------------------------------

TEST(AbftMode, ParsesTheThreeModes) {
  EXPECT_EQ(fx::fftx::parse_abft_mode("off"), AbftMode::Off);
  EXPECT_EQ(fx::fftx::parse_abft_mode("detect"), AbftMode::Detect);
  EXPECT_EQ(fx::fftx::parse_abft_mode("repair"), AbftMode::Repair);
}

TEST(AbftMode, RejectsUnknownValuesNamingTheVariable) {
  try {
    (void)fx::fftx::parse_abft_mode("paranoid");
    FAIL() << "'paranoid' was accepted";
  } catch (const fx::core::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("FFTX_ABFT"), std::string::npos) << what;
    EXPECT_NE(what.find("'paranoid'"), std::string::npos) << what;
    EXPECT_NE(what.find("off"), std::string::npos) << what;
    EXPECT_NE(what.find("detect"), std::string::npos) << what;
    EXPECT_NE(what.find("repair"), std::string::npos) << what;
  }
}

TEST(AbftMode, DefaultReadsTheEnvironmentLive) {
  ::unsetenv("FFTX_ABFT");
  EXPECT_EQ(fx::fftx::default_abft_mode(), AbftMode::Off);
  ::setenv("FFTX_ABFT", "detect", 1);
  EXPECT_EQ(fx::fftx::default_abft_mode(), AbftMode::Detect);
  ::setenv("FFTX_ABFT", "bogus", 1);
  EXPECT_THROW((void)fx::fftx::default_abft_mode(), fx::core::Error);
  ::unsetenv("FFTX_ABFT");
  EXPECT_EQ(fx::fftx::default_abft_mode(), AbftMode::Off);
}

// ---------------------------------------------------------------------------
// Checksum / digest building blocks
// ---------------------------------------------------------------------------

TEST(Checksum, WeightsAreDeterministicAndAwayFromZero) {
  for (std::size_t i = 0; i < 64; ++i) {
    const double w = fx::fft::abft_weight(i);
    EXPECT_EQ(w, fx::fft::abft_weight(i));
    EXPECT_GE(w, 1.0);  // a zero-ish weight would blind the checksum band
    EXPECT_LT(w, 2.0);
  }
  EXPECT_NE(fx::fft::abft_weight(0), fx::fft::abft_weight(1));
}

TEST(Checksum, CompareIsExactOnIdenticalData) {
  std::vector<cplx> a(37);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = cplx{0.25 * static_cast<double>(i), -1.5};
  }
  const auto r = fx::fft::checksum_compare(a.data(), a.data(), a.size());
  EXPECT_EQ(r.residual, 0.0);
  EXPECT_GT(fx::fft::checksum_tolerance(a.size(), 4, r.scale), 0.0);
}

TEST(Checksum, DigestSeesEveryBit) {
  std::vector<cplx> a(300, cplx{1.0, -2.0});  // spans two digest blocks
  const std::uint64_t h = fx::fft::digest(a.data(), a.size());
  EXPECT_EQ(h, fx::fft::digest(a.data(), a.size()));
  auto* bytes = reinterpret_cast<unsigned char*>(a.data());
  for (const std::size_t byte : {std::size_t{0}, 37 * sizeof(cplx),
                                 299 * sizeof(cplx) + 7}) {
    bytes[byte] ^= 0x10;
    EXPECT_NE(fx::fft::digest(a.data(), a.size()), h) << "byte " << byte;
    bytes[byte] ^= 0x10;
  }
  EXPECT_EQ(fx::fft::digest(a.data(), a.size()), h);
}

// ---------------------------------------------------------------------------
// Pipeline-level detection
// ---------------------------------------------------------------------------

struct AbftVariant {
  const char* name;
  bool fused = false;
  bool overlap = false;
  bool real = false;
  WireFormat wire = WireFormat::Fp64;
  PipelineMode mode = PipelineMode::Original;
};

/// One full pipeline run; returns every band's packed slice per rank
/// gathered into global order (disjoint writes, no extra sync needed).
std::vector<std::vector<cplx>> run_pipeline(const AbftVariant& v,
                                            AbftMode abft,
                                            const RunOptions& opts) {
  auto desc =
      std::make_shared<const Descriptor>(Cell{kAlat}, kEcut, kProc, kTg);
  const int carried =
      v.real ? static_cast<int>(fx::fft::gamma_pair_count(kBands)) : kBands;
  std::vector<std::vector<cplx>> result(
      static_cast<std::size_t>(carried),
      std::vector<cplx>(desc->sphere().size()));
  Runtime::run(kProc, opts, [&](Comm& world) {
    PipelineConfig cfg;
    cfg.num_bands = kBands;
    cfg.mode = v.mode;
    cfg.fused_exchange = v.fused;
    cfg.overlap_exchange = v.overlap;
    cfg.real_bands = v.real;
    cfg.wire_format = v.wire;
    cfg.abft = abft;
    BandFftPipeline pipe(world, desc, cfg);
    pipe.initialize_bands();
    pipe.run();
    const auto index = desc->world_g_index(world.rank());
    for (int n = 0; n < carried; ++n) {
      const auto mine = pipe.band(n);
      for (std::size_t k = 0; k < index.size(); ++k) {
        result[static_cast<std::size_t>(n)][index[k]] = mine[k];
      }
    }
  });
  return result;
}

TEST(Abft, CleanRunsNeverFlagAcrossVariants) {
  const AbftVariant kVariants[] = {
      {.name = "staged"},
      {.name = "fused", .fused = true},
      {.name = "overlap", .fused = true, .overlap = true},
      {.name = "r2c_bf16",
       .fused = true,
       .real = true,
       .wire = WireFormat::Bf16},
      {.name = "task_per_step", .mode = PipelineMode::TaskPerStep},
  };
  auto& reg = fx::core::MetricsRegistry::global();
  const auto checks_before = reg.counter("fftx.abft.checks").value();
  const auto detections_before = reg.counter("fftx.abft.detections").value();
  for (const auto& v : kVariants) {
    EXPECT_NO_THROW(run_pipeline(v, AbftMode::Detect, quiet_options()))
        << v.name;
  }
  EXPECT_GT(reg.counter("fftx.abft.checks").value(), checks_before);
  EXPECT_EQ(reg.counter("fftx.abft.detections").value(), detections_before)
      << "false positive on a clean run";
}

TEST(Abft, OffModeLetsAFlipCorruptTheOutputSilently) {
  // The control experiment: without ABFT the flipped band sails through
  // and the run "succeeds" with wrong data -- the exact failure mode the
  // detectors exist for.
  const AbftVariant v{.name = "staged"};
  const auto clean = run_pipeline(v, AbftMode::Off, quiet_options());
  RunOptions faulty = quiet_options();
  faulty.faults.flip_rank = 0;
  faulty.faults.flip_op = 5;
  const auto corrupted = run_pipeline(v, AbftMode::Off, faulty);
  EXPECT_NE(corrupted, clean);
}

TEST(Abft, DetectModeCatchesEveryFlipOpportunity) {
  // Staged Original mode has 8 flip opportunities per iteration (psi_prep,
  // Z-fw, scatter-fw, XY-fw, VOFR, XY-bw, scatter-bw, Z-bw) and npsi/ntg =
  // 4 iterations per rank: sweep all 32.  The at-rest digests are
  // bit-exact, so every single flip -- sign, exponent or mantissa, first
  // or last stage -- must be detected, not just the energetic ones.
  const AbftVariant v{.name = "staged"};
  for (std::uint64_t op = 0; op < 32; ++op) {
    RunOptions faulty = quiet_options();
    faulty.faults.flip_rank = 1;
    faulty.faults.flip_op = op;
    EXPECT_THROW(run_pipeline(v, AbftMode::Detect, faulty), SdcError)
        << "flip at opportunity " << op << " escaped detection";
  }
}

TEST(Abft, DetectModeCatchesFlipsOnFusedOverlappedNarrowWire) {
  const AbftVariant v{.name = "overlap_bf16",
                      .fused = true,
                      .overlap = true,
                      .wire = WireFormat::Bf16};
  // Overlapped legs fold Z-FFT and scatter into one task: 6 opportunities
  // per iteration instead of 8.
  for (std::uint64_t op : {0U, 3U, 5U, 11U, 23U}) {
    RunOptions faulty = quiet_options();
    faulty.faults.flip_rank = 2;
    faulty.faults.flip_op = op;
    EXPECT_THROW(run_pipeline(v, AbftMode::Detect, faulty), SdcError)
        << "flip at opportunity " << op << " escaped detection";
  }
}

// ---------------------------------------------------------------------------
// Surgical repair under the recovery driver
// ---------------------------------------------------------------------------

struct DriverRun {
  std::vector<std::vector<cplx>> bands;
  int completed = 0;
  int shrinks = 0;         // max over ranks
  int repaired = 0;        // summed over ranks
};

DriverRun run_driver(const RunOptions& opts, AbftMode abft, WireFormat wire) {
  auto desc =
      std::make_shared<const Descriptor>(Cell{kAlat}, kEcut, kProc, kTg);
  RecoveryConfig rcfg;
  rcfg.enabled = true;
  rcfg.checkpoint_bands = 2;
  rcfg.retry.max_attempts = 6;
  rcfg.retry.base_delay_ms = 0.1;
  DriverRun out;
  std::mutex mu;
  Runtime::run(kProc, opts, [&](Comm& world) {
    PipelineConfig cfg;
    cfg.num_bands = kBands;
    cfg.mode = PipelineMode::Original;
    cfg.wire_format = wire;
    cfg.abft = abft;
    RecoveryDriver driver(world, desc, cfg, rcfg);
    std::vector<std::vector<cplx>> mine;
    const auto rep = driver.run(mine);
    std::lock_guard lock(mu);
    ASSERT_TRUE(rep.completed);
    ++out.completed;
    out.shrinks = std::max(out.shrinks, rep.shrinks);
    out.repaired += rep.repaired_bands;
    if (out.bands.empty()) {
      out.bands = std::move(mine);
    } else {
      EXPECT_EQ(out.bands, mine) << "replicas disagree";
    }
  });
  return out;
}

TEST(AbftRepair, SurgicalReplayRestoresBitExactWithoutShrink) {
  auto& reg = fx::core::MetricsRegistry::global();
  for (const WireFormat wire : {WireFormat::Fp64, WireFormat::Bf16}) {
    const DriverRun clean =
        run_driver(quiet_options(), AbftMode::Off, wire);
    ASSERT_EQ(clean.completed, kProc);

    const auto repairs_before = reg.counter("fftx.abft.repairs").value();
    const auto repaired_before =
        reg.counter("fftx.abft.repaired_bands").value();
    RunOptions faulty = quiet_options();
    faulty.faults.flip_rank = 0;
    faulty.faults.flip_op = 5;
    const DriverRun healed = run_driver(faulty, AbftMode::Repair, wire);

    EXPECT_EQ(healed.completed, kProc);
    EXPECT_EQ(healed.shrinks, 0) << "surgical repair must not shrink";
    EXPECT_GE(healed.repaired, kProc);  // the replay is collective
    // Bit-exact at every wire format: per-band arithmetic (wire
    // quantization included) is decomposition-independent, so the ntg==1
    // replay reproduces the corrupted band exactly.
    EXPECT_EQ(healed.bands, clean.bands)
        << "wire " << static_cast<int>(wire);
    EXPECT_GT(reg.counter("fftx.abft.repairs").value(), repairs_before);
    EXPECT_GT(reg.counter("fftx.abft.repaired_bands").value(),
              repaired_before);
  }
}

TEST(AbftRepair, DetectModeEscalatesToFullReplayBitExact) {
  // Under Detect the driver has no band verdict (the pipeline throws), so
  // the SdcError rides the generic repair path: shrink (no rank died, so
  // the world keeps its size), roll back to the last checkpoint, replay.
  // The injector's opportunity counter has moved past the one-shot flip,
  // so the replay is clean and the result bit-exact.
  const DriverRun clean =
      run_driver(quiet_options(), AbftMode::Off, WireFormat::Fp64);
  RunOptions faulty = quiet_options();
  faulty.faults.flip_rank = 1;
  faulty.faults.flip_op = 9;
  const DriverRun healed =
      run_driver(faulty, AbftMode::Detect, WireFormat::Fp64);
  EXPECT_EQ(healed.completed, kProc);
  EXPECT_GE(healed.shrinks, 1);
  EXPECT_EQ(healed.repaired, 0);  // no surgical path in detect mode
  EXPECT_EQ(healed.bands, clean.bands);
}

TEST(AbftRepair, PersistentCorruptionExhaustsTheBudget) {
  // flip_prob = 1 corrupts every buffer after every stage, so the surgical
  // replay re-fails (escalations), the shrink-and-replay re-fails too, and
  // the driver must eventually surface the error instead of spinning.
  auto& reg = fx::core::MetricsRegistry::global();
  const auto escalations_before =
      reg.counter("fftx.abft.escalations").value();
  RunOptions faulty = quiet_options();
  faulty.faults.flip_prob = 1.0;
  auto run = [&] {
    auto desc =
        std::make_shared<const Descriptor>(Cell{kAlat}, kEcut, kProc, kTg);
    RecoveryConfig rcfg;
    rcfg.enabled = true;
    rcfg.checkpoint_bands = 2;
    rcfg.retry.max_attempts = 2;
    rcfg.retry.base_delay_ms = 0.1;
    Runtime::run(kProc, faulty, [&](Comm& world) {
      PipelineConfig cfg;
      cfg.num_bands = kBands;
      cfg.mode = PipelineMode::Original;
      cfg.abft = AbftMode::Repair;
      RecoveryDriver driver(world, desc, cfg, rcfg);
      std::vector<std::vector<cplx>> mine;
      (void)driver.run(mine);
    });
  };
  EXPECT_THROW(run(), fx::core::Error);
  EXPECT_GT(reg.counter("fftx.abft.escalations").value(), escalations_before);
}

}  // namespace
