// Fused zero-copy transposes and nonblocking overlap acceptance: every
// pipeline mode with every {fused, overlap} combination is bit-identical
// to the staged blocking oracle; the guard and the recovery driver keep
// working on the fused/overlapped path; the overlap actually hides
// exchange wait (fftx.exchange.overlap_hidden_ms advances).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "fftx/pipeline.hpp"
#include "fftx/recovery.hpp"
#include "fftx/reference.hpp"
#include "simmpi/runtime.hpp"

namespace {

using fx::fft::cplx;
using fx::fftx::BandFftPipeline;
using fx::fftx::Descriptor;
using fx::fftx::PipelineConfig;
using fx::fftx::PipelineMode;
using fx::fftx::RecoveryConfig;
using fx::fftx::RecoveryDriver;
using fx::mpi::Comm;
using fx::mpi::CommOpKind;
using fx::mpi::RunOptions;
using fx::mpi::Runtime;
using fx::pw::Cell;

constexpr double kAlat = 8.0;
constexpr double kEcut = 8.0;
constexpr int kBands = 8;
constexpr int kProc = 4;
constexpr int kTg = 2;

RunOptions quiet_options() {
  RunOptions opts;
  opts.watchdog.window_ms = 60000.0;
  return opts;
}

struct ExchangeVariant {
  bool fused;
  bool overlap;
  int chunks = 4;
};

struct RunResult {
  std::vector<std::vector<cplx>> bands;  // [band][global G position]
  std::uint64_t guard_retries = 0;
};

/// One pipeline run gathering every band in global G order, with the
/// exchange variant pinned explicitly (env knobs must not leak in).
RunResult run_variant(PipelineMode mode, int nthreads,
                      const ExchangeVariant& v,
                      const RunOptions& opts = RunOptions{},
                      bool guard = false) {
  auto desc =
      std::make_shared<const Descriptor>(Cell{kAlat}, kEcut, kProc, kTg);
  RunResult result;
  result.bands.assign(kBands, std::vector<cplx>(desc->sphere().size()));
  std::mutex mu;
  Runtime::run(kProc, opts, [&](Comm& world) {
    PipelineConfig cfg;
    cfg.num_bands = kBands;
    cfg.mode = mode;
    cfg.nthreads = nthreads;
    cfg.guard_exchanges = guard;
    cfg.fused_exchange = v.fused;
    cfg.overlap_exchange = v.overlap;
    cfg.overlap_chunks = v.chunks;
    BandFftPipeline pipe(world, desc, cfg);
    pipe.initialize_bands();
    pipe.run();
    const auto index = desc->world_g_index(world.rank());
    std::lock_guard lock(mu);
    for (int n = 0; n < kBands; ++n) {
      const auto mine = pipe.band(n);
      for (std::size_t k = 0; k < index.size(); ++k) {
        result.bands[static_cast<std::size_t>(n)][index[k]] = mine[k];
      }
    }
    result.guard_retries += pipe.guard_retries();
  });
  return result;
}

double worst_error_vs_reference(const RunResult& r) {
  const Descriptor oracle(Cell{kAlat}, kEcut, kProc, kTg);
  double err = 0.0;
  for (int n = 0; n < kBands; ++n) {
    const auto want = fx::fftx::reference_band_output(oracle, n, true);
    const auto& got = r.bands[static_cast<std::size_t>(n)];
    for (std::size_t k = 0; k < want.size(); ++k) {
      err = std::max(err, std::abs(got[k] - want[k]));
    }
  }
  return err;
}

TEST(FusedOverlap, EveryModeBitIdenticalToStagedOracle) {
  const ExchangeVariant kVariants[] = {
      {/*fused=*/false, /*overlap=*/false},
      {/*fused=*/true, /*overlap=*/false},
      {/*fused=*/true, /*overlap=*/true, /*chunks=*/1},
      {/*fused=*/true, /*overlap=*/true, /*chunks=*/4},
      // overlap implies fused even if the flag is left off
      {/*fused=*/false, /*overlap=*/true, /*chunks=*/3},
  };
  const struct {
    PipelineMode mode;
    int nthreads;
  } kModes[] = {
      {PipelineMode::Original, 1},
      {PipelineMode::TaskPerFft, 3},
      {PipelineMode::TaskPerStep, 2},
      {PipelineMode::Combined, 3},
  };
  for (const auto& m : kModes) {
    const RunResult staged =
        run_variant(m.mode, m.nthreads, {/*fused=*/false, /*overlap=*/false});
    EXPECT_LT(worst_error_vs_reference(staged), 1e-12)
        << fx::fftx::to_string(m.mode);
    for (const auto& v : kVariants) {
      const RunResult got = run_variant(m.mode, m.nthreads, v);
      EXPECT_EQ(got.bands, staged.bands)
          << fx::fftx::to_string(m.mode) << " fused=" << v.fused
          << " overlap=" << v.overlap << " chunks=" << v.chunks;
    }
  }
}

TEST(FusedOverlap, OverlapHidesExchangeWaitAndPostsNonblocking) {
  auto& reg = fx::core::MetricsRegistry::global();
  const auto posted0 = reg.counter("simmpi.ialltoallv.posted").value();
  const auto hidden0 =
      reg.histogram("fftx.exchange.overlap_hidden_ms").count();
  const auto staging0 = reg.counter("fftx.exchange.staging_bytes").value();

  const RunResult got = run_variant(PipelineMode::Original, 1,
                                    {/*fused=*/true, /*overlap=*/true});
  EXPECT_LT(worst_error_vs_reference(got), 1e-12);

  // Nonblocking scatters were posted, wait-side hiding was measured, and
  // no staging buffer was touched (the zero-copy claim).
  EXPECT_GT(reg.counter("simmpi.ialltoallv.posted").value(), posted0);
  EXPECT_GT(reg.histogram("fftx.exchange.overlap_hidden_ms").count(),
            hidden0);
  EXPECT_EQ(reg.counter("fftx.exchange.staging_bytes").value(), staging0);
}

TEST(FusedOverlap, StagedPathStillCountsStagingBytes) {
  auto& reg = fx::core::MetricsRegistry::global();
  const auto staging0 = reg.counter("fftx.exchange.staging_bytes").value();
  run_variant(PipelineMode::Original, 1, {/*fused=*/false, /*overlap=*/false});
  EXPECT_GT(reg.counter("fftx.exchange.staging_bytes").value(), staging0);
}

TEST(FusedOverlap, GuardRecoversBitFlipOnFusedOverlappedExchange) {
  // With the guard on, the overlapped path degrades to verified per-chunk
  // view exchanges; a bit flip injected into the nonblocking payload must
  // be caught and retried away, reproducing the fault-free result exactly.
  const RunResult clean = run_variant(PipelineMode::Original, 1,
                                      {/*fused=*/true, /*overlap=*/true});
  RunOptions opts = quiet_options();
  opts.faults.corrupt_rank = 0;
  opts.faults.corrupt_op = 0;
  opts.faults.only_kind = static_cast<int>(CommOpKind::Ialltoallv);
  const RunResult healed =
      run_variant(PipelineMode::Original, 1,
                  {/*fused=*/true, /*overlap=*/true}, opts, /*guard=*/true);
  EXPECT_GE(healed.guard_retries, 1U);
  EXPECT_EQ(healed.bands, clean.bands);
}

TEST(FusedOverlap, RecoveryDriverSurvivesKillOnFusedOverlappedPath) {
  auto desc =
      std::make_shared<const Descriptor>(Cell{kAlat}, kEcut, kProc, kTg);
  RecoveryConfig rcfg;
  rcfg.enabled = true;
  rcfg.checkpoint_bands = 2;
  rcfg.retry.max_attempts = 6;
  rcfg.retry.base_delay_ms = 0.1;

  auto run_recovered = [&](const RunOptions& opts) {
    std::vector<std::vector<cplx>> bands;
    int completed = 0;
    int died = 0;
    std::mutex mu;
    Runtime::run(kProc, opts, [&](Comm& world) {
      PipelineConfig cfg;
      cfg.num_bands = kBands;
      cfg.mode = PipelineMode::Original;
      cfg.fused_exchange = true;
      cfg.overlap_exchange = true;
      RecoveryDriver driver(world, desc, cfg, rcfg);
      std::vector<std::vector<cplx>> mine;
      const auto rep = driver.run(mine);
      std::lock_guard lock(mu);
      if (rep.died) {
        ++died;
        return;
      }
      ASSERT_TRUE(rep.completed);
      ++completed;
      if (bands.empty()) {
        bands = std::move(mine);
      } else {
        EXPECT_EQ(bands, mine) << "survivor replicas disagree";
      }
    });
    return std::tuple(std::move(bands), completed, died);
  };

  const auto [clean, clean_done, clean_died] = run_recovered(quiet_options());
  EXPECT_EQ(clean_done, kProc);
  EXPECT_EQ(clean_died, 0);

  // Kill a rank at a mid-run nonblocking scatter post: peers unwind out of
  // their chunk waits, the world repairs, and the replay finishes
  // bit-exact on the shrunken fused/overlapped pipeline.
  RunOptions faulty = quiet_options();
  faulty.faults.kill_rank = 1;
  faulty.faults.kill_op = 15;
  faulty.faults.only_kind = static_cast<int>(CommOpKind::Ialltoallv);
  const auto [healed, healed_done, healed_died] = run_recovered(faulty);
  EXPECT_EQ(healed_died, 1);
  EXPECT_EQ(healed_done, kProc - 1);
  EXPECT_EQ(healed, clean);
}

}  // namespace
