// Property sweep: randomized pipeline configurations (cell, cutoff, ranks,
// task groups, mode, workers, bands) must always match the serial oracle.
// Complements the hand-picked matrix in test_pipeline.cpp with breadth.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/rng.hpp"
#include "fftx/pipeline.hpp"
#include "fftx/reference.hpp"
#include "simmpi/runtime.hpp"

namespace {

using fx::core::Rng;
using fx::fftx::BandFftPipeline;
using fx::fftx::Descriptor;
using fx::fftx::PipelineConfig;
using fx::fftx::PipelineMode;
using fx::pw::Cell;

struct RandomConfig {
  Cell cell{8.0};
  double ecut = 8.0;
  int nproc = 1;
  int ntg = 1;
  int bands = 4;
  PipelineMode mode = PipelineMode::Original;
  int threads = 1;
};

RandomConfig draw(std::uint64_t seed) {
  Rng rng(seed);
  RandomConfig c;
  c.cell = Cell{rng.uniform(5.0, 9.0), rng.uniform(5.0, 9.0),
                rng.uniform(5.0, 9.0)};
  c.ecut = rng.uniform(4.0, 9.0);
  c.nproc = 1 + static_cast<int>(rng.next_below(6));  // 1..6
  // ntg: random divisor of nproc.
  std::vector<int> divisors;
  for (int d = 1; d <= c.nproc; ++d) {
    if (c.nproc % d == 0) divisors.push_back(d);
  }
  c.ntg = divisors[rng.next_below(divisors.size())];
  const int iterations = 1 + static_cast<int>(rng.next_below(4));
  c.bands = c.ntg * iterations;
  c.mode = static_cast<PipelineMode>(rng.next_below(4));
  if (c.mode != PipelineMode::Original) {
    c.ntg = 1;  // task modes replace the groups with threads (paper setup)
    c.bands = iterations;
    c.threads = 1 + static_cast<int>(rng.next_below(4));
  }
  return c;
}

class RandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSweep, MatchesOracle) {
  const RandomConfig c = draw(GetParam());
  SCOPED_TRACE(::testing::Message()
               << "seed=" << GetParam() << " cell=(" << c.cell.ax << ","
               << c.cell.ay << "," << c.cell.az << ") ecut=" << c.ecut
               << " P=" << c.nproc << " ntg=" << c.ntg
               << " bands=" << c.bands << " mode=" << to_string(c.mode)
               << " threads=" << c.threads);

  auto desc =
      std::make_shared<const Descriptor>(c.cell, c.ecut, c.nproc, c.ntg);
  double worst = -1.0;
  fx::mpi::Runtime::run(c.nproc, [&](fx::mpi::Comm& world) {
    PipelineConfig cfg;
    cfg.num_bands = c.bands;
    cfg.mode = c.mode;
    cfg.nthreads = c.threads;
    BandFftPipeline pipe(world, desc, cfg);
    pipe.initialize_bands();
    pipe.run();

    const auto index = desc->world_g_index(world.rank());
    double err = 0.0;
    for (int n = 0; n < c.bands; ++n) {
      const auto want = fx::fftx::reference_band_output(*desc, n, true);
      const auto mine = pipe.band(n);
      for (std::size_t k = 0; k < index.size(); ++k) {
        err = std::max(err, std::abs(mine[k] - want[index[k]]));
      }
    }
    double global = 0.0;
    world.allreduce(&err, &global, 1, fx::mpi::ReduceOp::Max);
    if (world.rank() == 0) worst = global;
  });
  EXPECT_GE(worst, 0.0);
  EXPECT_LT(worst, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSweep,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
