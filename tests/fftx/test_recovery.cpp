// Shrink-and-continue recovery acceptance: the driver finishes multi-band
// workloads despite injected rank kills, stalls and persistent payload
// corruption, and the recovered output is bit-for-bit the fault-free one.
#include <gtest/gtest.h>

#include <algorithm>
#include <complex>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/metrics.hpp"
#include "fftx/pipeline.hpp"
#include "fftx/recovery.hpp"
#include "fftx/reference.hpp"
#include "simmpi/runtime.hpp"

namespace {

using fx::core::CommError;
using fx::fft::cplx;
using fx::fftx::Descriptor;
using fx::fftx::PipelineConfig;
using fx::fftx::PipelineMode;
using fx::fftx::RecoveryConfig;
using fx::fftx::RecoveryDriver;
using fx::mpi::Comm;
using fx::mpi::CommOpKind;
using fx::mpi::RunOptions;
using fx::mpi::Runtime;
using fx::pw::Cell;

constexpr double kAlat = 8.0;
constexpr double kEcut = 8.0;
constexpr int kBands = 8;
constexpr int kProc = 4;
constexpr int kTg = 2;

RunOptions quiet_options() {
  RunOptions opts;
  opts.watchdog.window_ms = 60000.0;
  return opts;
}

RecoveryConfig recovery_config(int checkpoint_bands = 2) {
  RecoveryConfig rcfg;
  rcfg.enabled = true;
  rcfg.checkpoint_bands = checkpoint_bands;
  rcfg.retry.max_attempts = 6;
  rcfg.retry.base_delay_ms = 0.1;  // keep test-time backoffs short
  return rcfg;
}

struct RecoveryRun {
  std::vector<std::vector<cplx>> bands;  // replicated output, global order
  int completed = 0;
  int died = 0;
  int shrinks = 0;   // max over ranks
  int replayed = 0;  // summed over ranks
  int final_nproc = -1;
  int final_ntg = -1;
};

/// One recovered run under `opts`; every completing rank's replica must
/// agree (they are gathered to all ranks, so this is the real guarantee).
RecoveryRun run_recovered(const RunOptions& opts, const RecoveryConfig& rcfg,
                          bool guard = false) {
  auto desc =
      std::make_shared<const Descriptor>(Cell{kAlat}, kEcut, kProc, kTg);
  RecoveryRun out;
  std::mutex mu;
  Runtime::run(kProc, opts, [&](Comm& world) {
    PipelineConfig cfg;
    cfg.num_bands = kBands;
    cfg.mode = PipelineMode::Original;
    cfg.guard_exchanges = guard;
    // The fault plans here select the staged blocking Alltoallv; pin that
    // path so FFTX_FUSED_EXCHANGE / FFTX_OVERLAP_EXCHANGE in the
    // environment cannot redirect the injection.  (The fused/overlap
    // recovery path has its own test in test_fused_overlap.cpp.)
    cfg.fused_exchange = false;
    cfg.overlap_exchange = false;
    RecoveryDriver driver(world, desc, cfg, rcfg);
    std::vector<std::vector<cplx>> mine;
    const auto rep = driver.run(mine);
    std::lock_guard lock(mu);
    if (rep.died) {
      ++out.died;
      return;
    }
    ASSERT_TRUE(rep.completed);
    ++out.completed;
    out.shrinks = std::max(out.shrinks, rep.shrinks);
    out.replayed += rep.replayed_bands;
    out.final_nproc = rep.final_nproc;
    out.final_ntg = rep.final_ntg;
    if (out.bands.empty()) {
      out.bands = std::move(mine);
    } else {
      EXPECT_EQ(out.bands, mine) << "survivor replicas disagree";
    }
  });
  return out;
}

TEST(Recovery, DegradedNtgPicksLargestFeasibleDivisor) {
  EXPECT_EQ(fx::fftx::degraded_ntg(4, 2, 8), 2);
  EXPECT_EQ(fx::fftx::degraded_ntg(3, 2, 2), 1);   // 3 has no divisor 2
  EXPECT_EQ(fx::fftx::degraded_ntg(6, 4, 8), 2);   // 3 | 6 but 3 does not | 8
  EXPECT_EQ(fx::fftx::degraded_ntg(8, 4, 8), 4);
  EXPECT_EQ(fx::fftx::degraded_ntg(1, 4, 8), 1);
}

TEST(Recovery, FaultFreeRunMatchesReference) {
  const RecoveryRun clean = run_recovered(quiet_options(), recovery_config());
  EXPECT_EQ(clean.completed, kProc);
  EXPECT_EQ(clean.died, 0);
  EXPECT_EQ(clean.shrinks, 0);
  EXPECT_EQ(clean.final_nproc, kProc);
  const Descriptor oracle(Cell{kAlat}, kEcut, kProc, kTg);
  for (int n = 0; n < kBands; ++n) {
    const auto want = fx::fftx::reference_band_output(oracle, n, true);
    const auto& got = clean.bands[static_cast<std::size_t>(n)];
    ASSERT_EQ(got.size(), want.size());
    double err = 0.0;
    for (std::size_t k = 0; k < want.size(); ++k) {
      err = std::max(err, std::abs(got[k] - want[k]));
    }
    EXPECT_LT(err, 1e-12) << "band " << n;
  }
}

TEST(Recovery, KillMidRunCompletesBitExact) {
  const RecoveryRun clean = run_recovered(quiet_options(), recovery_config());

  RunOptions faulty = quiet_options();
  faulty.faults.kill_rank = 1;
  faulty.faults.kill_op = 25;  // mid-run: after some checkpoints committed
  const RecoveryRun healed = run_recovered(faulty, recovery_config());

  EXPECT_EQ(healed.died, 1);
  EXPECT_EQ(healed.completed, kProc - 1);
  EXPECT_GE(healed.shrinks, 1);
  EXPECT_EQ(healed.final_nproc, kProc - 1);
  EXPECT_EQ(healed.final_ntg, 1);  // 3 survivors: no larger feasible divisor
  EXPECT_EQ(healed.bands, clean.bands);
}

TEST(Recovery, PersistentCorruptionThenKillCompletesBitExact) {
  auto& reg = fx::core::MetricsRegistry::global();
  const auto shrinks_before = reg.counter("fftx.recovery.shrinks").value();

  const RecoveryRun clean =
      run_recovered(quiet_options(), recovery_config(), /*guard=*/true);

  // Corruption outlasting one guard's whole retry budget (4 attempts) plus
  // a later rank kill: the guard exhausts collectively, the world repairs
  // in place, the replay absorbs the tail of the corruption window, and the
  // kill then shrinks the world for real.
  RunOptions faulty = quiet_options();
  faulty.faults.corrupt_rank = 0;
  faulty.faults.corrupt_op = 2;
  faulty.faults.corrupt_count = 6;
  faulty.faults.only_kind = static_cast<int>(CommOpKind::Alltoallv);
  // only_kind restricts the op counter too: indices advance on Alltoallv
  // ops alone, so the kill lands mid-run among roughly 24 such ops.
  faulty.faults.kill_rank = 2;
  faulty.faults.kill_op = 15;
  const RecoveryRun healed =
      run_recovered(faulty, recovery_config(), /*guard=*/true);

  EXPECT_EQ(healed.died, 1);
  EXPECT_EQ(healed.completed, kProc - 1);
  EXPECT_GE(healed.shrinks, 2);  // corruption repair + kill repair
  EXPECT_EQ(healed.final_nproc, kProc - 1);
  EXPECT_EQ(healed.bands, clean.bands);
  EXPECT_GE(reg.counter("fftx.recovery.shrinks").value(), shrinks_before + 2);
}

TEST(Recovery, StallIsAbsorbedWithoutRepair) {
  const RecoveryRun clean = run_recovered(quiet_options(), recovery_config());

  RunOptions faulty = quiet_options();
  faulty.faults.stall_rank = 0;
  faulty.faults.stall_op = 5;
  faulty.faults.stall_ms = 50.0;
  const RecoveryRun stalled = run_recovered(faulty, recovery_config());

  EXPECT_EQ(stalled.completed, kProc);
  EXPECT_EQ(stalled.died, 0);
  EXPECT_EQ(stalled.shrinks, 0);
  EXPECT_EQ(stalled.bands, clean.bands);
}

TEST(Recovery, CascadingKillsShrinkTwiceIfNeeded) {
  const RecoveryRun clean = run_recovered(quiet_options(), recovery_config());

  RunOptions faulty = quiet_options();
  faulty.faults.kill_rank = 1;
  faulty.faults.kill_count = 2;  // ranks 1 and 2
  faulty.faults.kill_op = 12;
  const RecoveryRun healed = run_recovered(faulty, recovery_config());

  EXPECT_EQ(healed.died, 2);
  EXPECT_EQ(healed.completed, kProc - 2);
  EXPECT_GE(healed.shrinks, 1);
  EXPECT_EQ(healed.final_nproc, kProc - 2);
  EXPECT_EQ(healed.bands, clean.bands);
}

TEST(Recovery, ReplayedBandsAreReported) {
  auto& reg = fx::core::MetricsRegistry::global();
  const auto replayed_before =
      reg.counter("fftx.recovery.replayed_bands").value();

  RunOptions faulty = quiet_options();
  faulty.faults.kill_rank = 1;
  faulty.faults.kill_op = 25;
  const RecoveryRun healed = run_recovered(faulty, recovery_config());

  // Each survivor replays at least the in-flight checkpoint batch.
  EXPECT_GE(healed.replayed, 2 * (kProc - 1));
  EXPECT_GE(reg.counter("fftx.recovery.replayed_bands").value(),
            replayed_before + 2U * (kProc - 1));
}

TEST(Recovery, DisabledRecoveryRethrowsTheFailure) {
  RunOptions faulty = quiet_options();
  faulty.faults.kill_rank = 1;
  faulty.faults.kill_op = 25;
  RecoveryConfig rcfg = recovery_config();
  rcfg.enabled = false;
  EXPECT_THROW(run_recovered(faulty, rcfg), CommError);
}

TEST(Recovery, ConfigFromEnvReadsTheKnobs) {
  ::setenv("FFTX_RECOVER", "1", 1);
  ::setenv("FFTX_CHECKPOINT_BANDS", "4", 1);
  ::setenv("FFTX_RETRY_MAX_ATTEMPTS", "7", 1);
  const RecoveryConfig cfg = RecoveryConfig::from_env();
  EXPECT_TRUE(cfg.enabled);
  EXPECT_EQ(cfg.checkpoint_bands, 4);
  EXPECT_EQ(cfg.retry.max_attempts, 7);
  ::unsetenv("FFTX_RECOVER");
  ::unsetenv("FFTX_CHECKPOINT_BANDS");
  ::unsetenv("FFTX_RETRY_MAX_ATTEMPTS");
  EXPECT_FALSE(RecoveryConfig::from_env().enabled);
}

}  // namespace
