// End-to-end pipeline correctness: every mode, rank count and task-group
// count must reproduce the serial 3D oracle exactly (the optimizations
// reorder work, never arithmetic).
#include "fftx/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include "fftx/reference.hpp"
#include "simmpi/runtime.hpp"

namespace {

using fx::fft::cplx;
using fx::fftx::BandFftPipeline;
using fx::fftx::Descriptor;
using fx::fftx::PipelineConfig;
using fx::fftx::PipelineMode;
using fx::pw::Cell;

constexpr double kAlat = 8.0;
constexpr double kEcut = 8.0;
constexpr int kBands = 8;

struct Case {
  int nproc;
  int ntg;
  PipelineMode mode;
  int nthreads;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  return std::string(fx::fftx::to_string(c.mode)) + "_p" +
         std::to_string(c.nproc) + "_t" + std::to_string(c.ntg) + "_w" +
         std::to_string(c.nthreads);
}

/// Runs the pipeline for the case and collects every band's packed
/// coefficients per rank, returned indexed by [band][global G position].
std::vector<std::vector<cplx>> run_case(const Case& c, bool apply_potential) {
  auto desc = std::make_shared<const Descriptor>(Cell{kAlat}, kEcut, c.nproc,
                                                 c.ntg);
  std::vector<std::vector<cplx>> result(
      kBands, std::vector<cplx>(desc->sphere().size()));

  fx::mpi::Runtime::run(c.nproc, [&](fx::mpi::Comm& world) {
    PipelineConfig cfg;
    cfg.num_bands = kBands;
    cfg.mode = c.mode;
    cfg.nthreads = c.nthreads;
    cfg.apply_potential = apply_potential;
    BandFftPipeline pipe(world, desc, cfg);
    pipe.initialize_bands();
    pipe.run();
    // Gather: each rank writes its slice into the shared result (disjoint
    // positions, so no synchronization needed beyond the runtime's join).
    const auto index = desc->world_g_index(world.rank());
    for (int n = 0; n < kBands; ++n) {
      const auto mine = pipe.band(n);
      for (std::size_t k = 0; k < index.size(); ++k) {
        result[static_cast<std::size_t>(n)][index[k]] = mine[k];
      }
    }
  });
  return result;
}

double max_band_error(const std::vector<cplx>& got,
                      const std::vector<cplx>& want) {
  double err = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    err = std::max(err, std::abs(got[i] - want[i]));
  }
  return err;
}

class PipelineMatrix : public ::testing::TestWithParam<Case> {};

TEST_P(PipelineMatrix, MatchesSerialOracleWithPotential) {
  const Case c = GetParam();
  const Descriptor oracle_desc(Cell{kAlat}, kEcut, c.nproc, c.ntg);
  const auto got = run_case(c, /*apply_potential=*/true);
  for (int n = 0; n < kBands; ++n) {
    const auto want = fx::fftx::reference_band_output(oracle_desc, n, true);
    EXPECT_LT(max_band_error(got[static_cast<std::size_t>(n)], want), 1e-12)
        << "band " << n;
  }
}

TEST_P(PipelineMatrix, IdentityWhenPotentialIsOff) {
  const Case c = GetParam();
  const Descriptor oracle_desc(Cell{kAlat}, kEcut, c.nproc, c.ntg);
  const auto got = run_case(c, /*apply_potential=*/false);
  for (int n = 0; n < kBands; ++n) {
    const auto want = fx::fftx::reference_band_input(oracle_desc, n);
    EXPECT_LT(max_band_error(got[static_cast<std::size_t>(n)], want), 1e-12)
        << "band " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Original, PipelineMatrix,
    ::testing::Values(Case{1, 1, PipelineMode::Original, 1},
                      Case{2, 1, PipelineMode::Original, 1},
                      Case{2, 2, PipelineMode::Original, 1},
                      Case{4, 1, PipelineMode::Original, 1},
                      Case{4, 2, PipelineMode::Original, 1},
                      Case{4, 4, PipelineMode::Original, 1},
                      Case{8, 4, PipelineMode::Original, 1},
                      Case{8, 8, PipelineMode::Original, 1},
                      Case{6, 2, PipelineMode::Original, 1}),
    case_name);

INSTANTIATE_TEST_SUITE_P(
    TaskPerFft, PipelineMatrix,
    ::testing::Values(Case{1, 1, PipelineMode::TaskPerFft, 4},
                      Case{2, 1, PipelineMode::TaskPerFft, 2},
                      Case{2, 1, PipelineMode::TaskPerFft, 4},
                      Case{4, 1, PipelineMode::TaskPerFft, 2},
                      Case{4, 2, PipelineMode::TaskPerFft, 2},
                      Case{8, 1, PipelineMode::TaskPerFft, 3}),
    case_name);

INSTANTIATE_TEST_SUITE_P(
    TaskPerStep, PipelineMatrix,
    ::testing::Values(Case{1, 1, PipelineMode::TaskPerStep, 4},
                      Case{2, 1, PipelineMode::TaskPerStep, 2},
                      Case{2, 2, PipelineMode::TaskPerStep, 3},
                      Case{4, 2, PipelineMode::TaskPerStep, 2},
                      Case{4, 1, PipelineMode::TaskPerStep, 4}),
    case_name);

INSTANTIATE_TEST_SUITE_P(
    Combined, PipelineMatrix,
    ::testing::Values(Case{1, 1, PipelineMode::Combined, 4},
                      Case{2, 1, PipelineMode::Combined, 3},
                      Case{4, 1, PipelineMode::Combined, 2}),
    case_name);

TEST(Pipeline, AllModesProduceIdenticalCoefficients) {
  // Bitwise agreement between modes on the same layout (P=2).
  const auto a = run_case({2, 1, PipelineMode::Original, 1}, true);
  const auto b = run_case({2, 1, PipelineMode::TaskPerFft, 3}, true);
  const auto c = run_case({2, 1, PipelineMode::TaskPerStep, 3}, true);
  const auto d = run_case({2, 1, PipelineMode::Combined, 3}, true);
  for (int n = 0; n < kBands; ++n) {
    const auto nu = static_cast<std::size_t>(n);
    EXPECT_EQ(a[nu], b[nu]) << "band " << n;
    EXPECT_EQ(a[nu], c[nu]) << "band " << n;
    EXPECT_EQ(a[nu], d[nu]) << "band " << n;
  }
}

TEST(Pipeline, RepeatedRunsAreDeterministic) {
  const auto a = run_case({4, 2, PipelineMode::Original, 1}, true);
  const auto b = run_case({4, 2, PipelineMode::Original, 1}, true);
  for (int n = 0; n < kBands; ++n) {
    EXPECT_EQ(a[static_cast<std::size_t>(n)], b[static_cast<std::size_t>(n)]);
  }
}

TEST(Pipeline, RejectsBandCountNotMultipleOfNtg) {
  auto desc = std::make_shared<const Descriptor>(Cell{kAlat}, kEcut, 2, 2);
  EXPECT_THROW(fx::mpi::Runtime::run(2,
                                     [&](fx::mpi::Comm& world) {
                                       PipelineConfig cfg;
                                       cfg.num_bands = 7;  // not % 2
                                       BandFftPipeline pipe(world, desc, cfg);
                                     }),
               fx::core::Error);
}

TEST(Pipeline, TracerReceivesAllThreeStreams) {
  auto desc = std::make_shared<const Descriptor>(Cell{kAlat}, kEcut, 2, 1);
  fx::trace::Tracer tracer(2);
  fx::mpi::Runtime::run(2, [&](fx::mpi::Comm& world) {
    PipelineConfig cfg;
    cfg.num_bands = 4;
    cfg.mode = PipelineMode::TaskPerFft;
    cfg.nthreads = 2;
    BandFftPipeline pipe(world, desc, cfg, &tracer);
    pipe.initialize_bands();
    pipe.run();
  });
  EXPECT_FALSE(tracer.compute_events().empty());
  EXPECT_FALSE(tracer.comm_events().empty());
  EXPECT_FALSE(tracer.task_events().empty());
  // 4 band tasks per rank, 2 ranks.
  EXPECT_EQ(tracer.task_events().size(), 8U);
  // Every phase carries a positive instruction estimate and sane times.
  for (const auto& e : tracer.compute_events()) {
    EXPECT_GE(e.instructions, 0.0);
    EXPECT_LE(e.t_begin, e.t_end);
    EXPECT_GE(e.band, 0);
  }
}

}  // namespace
