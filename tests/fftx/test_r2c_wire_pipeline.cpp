// Gamma-point real-band mode and reduced-precision wire formats on the
// pipeline: packed pairs bit-match the serial packed oracle across every
// exchange variant at the fp64 wire; narrow wires stay within the
// documented quantizer bounds (and all narrow-wire variants agree
// bit-exactly with each other, since quantization is elementwise); the
// byte savings are measurable; guard and recovery keep working.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <memory>
#include <mutex>
#include <vector>

#include "core/metrics.hpp"
#include "core/rng.hpp"
#include "fft/gamma.hpp"
#include "fftx/grid_fft.hpp"
#include "fftx/pipeline.hpp"
#include "fftx/recovery.hpp"
#include "fftx/reference.hpp"
#include "simmpi/runtime.hpp"
#include "simmpi/wire.hpp"

namespace {

using fx::fft::cplx;
using fx::fftx::BandFftPipeline;
using fx::fftx::Descriptor;
using fx::fftx::PipelineConfig;
using fx::fftx::PipelineMode;
using fx::fftx::RecoveryConfig;
using fx::fftx::RecoveryDriver;
using fx::mpi::Comm;
using fx::mpi::CommOpKind;
using fx::mpi::RunOptions;
using fx::mpi::Runtime;
using fx::mpi::WireFormat;
using fx::pw::Cell;

constexpr double kAlat = 8.0;
constexpr double kEcut = 8.0;
constexpr int kBands = 8;  // 4 packed pairs under real_bands
constexpr int kProc = 4;
constexpr int kTg = 2;

RunOptions quiet_options() {
  RunOptions opts;
  opts.watchdog.window_ms = 60000.0;
  return opts;
}

struct Variant {
  bool fused = false;
  bool overlap = false;
  bool guard = false;
  int chunks = 4;
};

/// One pipeline run with everything pinned; returns every carried band
/// (num_psi of them) gathered into global G order.
std::vector<std::vector<cplx>> run_pipeline(const PipelineConfig& base,
                                            const Variant& v,
                                            const RunOptions& opts =
                                                RunOptions{}) {
  auto desc =
      std::make_shared<const Descriptor>(Cell{kAlat}, kEcut, kProc, kTg);
  std::vector<std::vector<cplx>> bands;
  std::mutex mu;
  Runtime::run(kProc, opts, [&](Comm& world) {
    PipelineConfig cfg = base;
    cfg.mode = PipelineMode::Original;
    cfg.guard_exchanges = v.guard;
    cfg.fused_exchange = v.fused;
    cfg.overlap_exchange = v.overlap;
    cfg.overlap_chunks = v.chunks;
    BandFftPipeline pipe(world, desc, cfg);
    pipe.initialize_bands();
    pipe.run();
    const auto index = desc->world_g_index(world.rank());
    std::lock_guard lock(mu);
    if (bands.empty()) {
      bands.assign(static_cast<std::size_t>(pipe.num_psi()),
                   std::vector<cplx>(desc->sphere().size()));
    }
    for (int n = 0; n < pipe.num_psi(); ++n) {
      const auto mine = pipe.band(n);
      for (std::size_t k = 0; k < index.size(); ++k) {
        bands[static_cast<std::size_t>(n)][index[k]] = mine[k];
      }
    }
  });
  return bands;
}

double worst_abs_error(const std::vector<std::vector<cplx>>& got,
                       const std::vector<std::vector<cplx>>& want) {
  double err = 0.0;
  for (std::size_t n = 0; n < got.size(); ++n) {
    for (std::size_t k = 0; k < got[n].size(); ++k) {
      err = std::max(err, std::abs(got[n][k] - want[n][k]));
    }
  }
  return err;
}

double peak_magnitude(const std::vector<std::vector<cplx>>& bands) {
  double peak = 0.0;
  for (const auto& band : bands) {
    for (const cplx& c : band) peak = std::max(peak, std::abs(c));
  }
  return peak;
}

std::vector<std::vector<cplx>> packed_oracle(int num_bands) {
  const Descriptor desc(Cell{kAlat}, kEcut, kProc, kTg);
  const auto pairs = fx::fft::gamma_pair_count(
      static_cast<std::size_t>(num_bands));
  std::vector<std::vector<cplx>> want(pairs);
  for (std::size_t p = 0; p < pairs; ++p) {
    want[p] = fx::fftx::reference_packed_band_output(
        desc, static_cast<int>(p), num_bands, true);
  }
  return want;
}

TEST(R2cPipeline, RealBandsMatchPackedOracleAcrossExchangeVariants) {
  PipelineConfig cfg;
  cfg.num_bands = kBands;
  cfg.real_bands = true;
  cfg.wire_format = WireFormat::Fp64;

  const auto want = packed_oracle(kBands);
  const Variant kVariants[] = {
      {},                                              // staged blocking
      {.fused = true},                                 // zero-copy
      {.fused = true, .overlap = true, .chunks = 1},   // nonblocking
      {.fused = true, .overlap = true, .chunks = 4},   // chunked overlap
      {.fused = true, .guard = true},                  // checksummed
      {.fused = true, .overlap = true, .guard = true}, // guarded chunks
  };
  const auto staged = run_pipeline(cfg, kVariants[0]);
  ASSERT_EQ(staged.size(), want.size());
  EXPECT_LT(worst_abs_error(staged, want), 1e-12);
  for (const auto& v : kVariants) {
    const auto got = run_pipeline(cfg, v);
    EXPECT_EQ(got, staged) << "fused=" << v.fused << " overlap=" << v.overlap
                           << " guard=" << v.guard;
  }
}

TEST(R2cPipeline, OddBandCountCarriesZeroImaginaryTail) {
  // 7 bands pack into 4 pairs (the old nbands/2 truncation would have
  // dropped band 6); the tail pair's imaginary part is a zero band.
  PipelineConfig cfg;
  cfg.num_bands = 7;
  cfg.real_bands = true;
  const auto got = run_pipeline(cfg, {.fused = true});
  const auto want = packed_oracle(7);
  ASSERT_EQ(got.size(), 4U);
  EXPECT_LT(worst_abs_error(got, want), 1e-12);
}

TEST(R2cPipeline, RealBandsHalveTheBytesOnTheWire) {
  auto& bytes = fx::core::MetricsRegistry::global().counter(
      "simmpi.ialltoallv.bytes");
  auto measure = [&](bool real) {
    PipelineConfig cfg;
    cfg.num_bands = kBands;
    cfg.real_bands = real;
    const auto before = bytes.value();
    run_pipeline(cfg, {.fused = true});
    return bytes.value() - before;
  };
  const auto complex_bytes = measure(false);
  ASSERT_GT(complex_bytes, 0U);
  // Half the band-loop iterations -> exactly half the exchanged bytes.
  EXPECT_EQ(measure(true), complex_bytes / 2);
}

TEST(WirePipeline, Fp32WireStaysWithinQuantizerBoundOfFp64) {
  auto& gauge = fx::core::MetricsRegistry::global().gauge(
      "fftx.exchange.wire_max_ulp_err");
  PipelineConfig cfg;
  cfg.num_bands = kBands;
  cfg.wire_format = WireFormat::Fp64;
  const auto exact = run_pipeline(cfg, {.fused = true});

  gauge.reset();
  cfg.wire_format = WireFormat::Fp32;
  const auto narrow = run_pipeline(cfg, {.fused = true});

  // Quantization is per element and per exchange; through the FFT chain
  // the end-to-end error stays a small multiple of the fp32 relative eps.
  const double rel = worst_abs_error(narrow, exact) / peak_magnitude(exact);
  EXPECT_GT(rel, 0.0);      // the narrow wire is genuinely lossy
  EXPECT_LT(rel, 1e-4);     // ...but bounded (fp32 eps is 1.2e-7)
  EXPECT_GT(gauge.value(), 0.0);
  EXPECT_LE(gauge.value(), 0.5);  // per-double RNE bound, in fp32 ulps
}

TEST(WirePipeline, Bf16WireStaysWithinQuantizerBoundOfFp64) {
  auto& gauge = fx::core::MetricsRegistry::global().gauge(
      "fftx.exchange.wire_max_ulp_err");
  PipelineConfig cfg;
  cfg.num_bands = kBands;
  const auto exact = run_pipeline(cfg, {.fused = true});

  gauge.reset();
  cfg.wire_format = WireFormat::Bf16;
  const auto narrow = run_pipeline(cfg, {.fused = true});

  const double rel = worst_abs_error(narrow, exact) / peak_magnitude(exact);
  EXPECT_GT(rel, 0.0);
  EXPECT_LT(rel, 0.05);  // bf16 eps is 7.8e-3
  EXPECT_GT(gauge.value(), 0.0);
  EXPECT_LE(gauge.value(), 0.51);  // per-double bound, in bf16 ulps
}

TEST(WirePipeline, NarrowWireVariantsAreBitIdentical) {
  // Quantization is elementwise, so chunking, guarding and overlap cannot
  // change the arithmetic: every fp32-wire variant produces the same bits.
  // (wire != fp64 forces the fused layouts even when the flag is off.)
  PipelineConfig cfg;
  cfg.num_bands = kBands;
  cfg.wire_format = WireFormat::Fp32;
  const Variant kVariants[] = {
      {},  // fused implied by the wire
      {.fused = true},
      {.fused = true, .overlap = true, .chunks = 3},
      {.fused = true, .guard = true},
      {.fused = true, .overlap = true, .guard = true},
  };
  const auto base = run_pipeline(cfg, kVariants[0]);
  for (const auto& v : kVariants) {
    EXPECT_EQ(run_pipeline(cfg, v), base)
        << "fused=" << v.fused << " overlap=" << v.overlap
        << " guard=" << v.guard;
  }
}

TEST(WirePipeline, GuardHealsBitFlipAtNarrowWire) {
  // Wire-encoded digests: a flipped payload bit above the wire's own
  // precision floor is caught and retried away at fp32 just as at fp64.
  PipelineConfig cfg;
  cfg.num_bands = kBands;
  cfg.wire_format = WireFormat::Fp32;
  const auto clean = run_pipeline(cfg, {.fused = true, .guard = true});

  RunOptions opts = quiet_options();
  opts.faults.corrupt_rank = 0;
  opts.faults.corrupt_op = 0;
  opts.faults.only_kind = static_cast<int>(CommOpKind::Ialltoallv);
  const auto healed =
      run_pipeline(cfg, {.fused = true, .guard = true}, opts);
  EXPECT_EQ(healed, clean);
}

TEST(WirePipeline, RealBandsComposeWithNarrowWire) {
  // The full tentpole: half the transforms (r2c pairing) AND a quarter of
  // the bytes (bf16) in one configuration, still within quantizer error
  // of the packed oracle.
  PipelineConfig cfg;
  cfg.num_bands = kBands;
  cfg.real_bands = true;
  cfg.wire_format = WireFormat::Bf16;
  const auto got = run_pipeline(cfg, {.fused = true});
  const auto want = packed_oracle(kBands);
  const double rel = worst_abs_error(got, want) / peak_magnitude(want);
  EXPECT_LT(rel, 0.05);
}

TEST(WirePipeline, RecoveryDriverSurvivesKillWithNarrowWire) {
  auto desc =
      std::make_shared<const Descriptor>(Cell{kAlat}, kEcut, kProc, kTg);
  RecoveryConfig rcfg;
  rcfg.enabled = true;
  rcfg.checkpoint_bands = 2;
  rcfg.retry.max_attempts = 6;
  rcfg.retry.base_delay_ms = 0.1;

  auto run_recovered = [&](const RunOptions& opts) {
    std::vector<std::vector<cplx>> bands;
    int completed = 0;
    int died = 0;
    std::mutex mu;
    Runtime::run(kProc, opts, [&](Comm& world) {
      PipelineConfig cfg;
      cfg.num_bands = kBands;
      cfg.mode = PipelineMode::Original;
      cfg.fused_exchange = true;
      cfg.overlap_exchange = true;
      cfg.wire_format = WireFormat::Fp32;
      RecoveryDriver driver(world, desc, cfg, rcfg);
      std::vector<std::vector<cplx>> mine;
      const auto rep = driver.run(mine);
      std::lock_guard lock(mu);
      if (rep.died) {
        ++died;
        return;
      }
      ASSERT_TRUE(rep.completed);
      ++completed;
      if (bands.empty()) {
        bands = std::move(mine);
      } else {
        EXPECT_EQ(bands, mine) << "survivor replicas disagree";
      }
    });
    return std::tuple(std::move(bands), completed, died);
  };

  const auto [clean, clean_done, clean_died] = run_recovered(quiet_options());
  EXPECT_EQ(clean_done, kProc);
  EXPECT_EQ(clean_died, 0);

  RunOptions faulty = quiet_options();
  faulty.faults.kill_rank = 1;
  faulty.faults.kill_op = 15;
  faulty.faults.only_kind = static_cast<int>(CommOpKind::Ialltoallv);
  const auto [healed, healed_done, healed_died] = run_recovered(faulty);
  EXPECT_EQ(healed_died, 1);
  EXPECT_EQ(healed_done, kProc - 1);
  // Narrow-wire replay is bit-exact: the shrunken world re-decomposes
  // (here 3 ranks forces ntg = 1), but the ntg == 1 pack/unpack shortcuts
  // apply the same wire quantization as the general path, so per-band
  // arithmetic -- quantizer included -- is decomposition-independent and
  // the replayed bands match the checkpointed run bitwise, exactly like
  // the fp64 wire (FusedOverlap.RecoveryDriverSurvivesKillOnFusedOverlappedPath).
  EXPECT_EQ(healed, clean);
}

TEST(R2cPipeline, RecoveryDriverBatchesAndReplaysPackedPairs) {
  // The driver must count batches, checkpoints, and replay in *pairs* when
  // the pipeline carries real bands: 8 bands = 4 pairs, checkpointed 2
  // pairs at a time (a batch of 2 real bands would be a single pair, which
  // ntg 2 cannot split -- the exact configuration this guards against).
  auto desc =
      std::make_shared<const Descriptor>(Cell{kAlat}, kEcut, kProc, kTg);
  RecoveryConfig rcfg;
  rcfg.enabled = true;
  rcfg.checkpoint_bands = 2;
  rcfg.retry.max_attempts = 6;
  rcfg.retry.base_delay_ms = 0.1;

  auto run_recovered = [&](const RunOptions& opts) {
    std::vector<std::vector<cplx>> bands;
    int died = 0;
    std::mutex mu;
    Runtime::run(kProc, opts, [&](Comm& world) {
      PipelineConfig cfg;
      cfg.num_bands = kBands;
      cfg.mode = PipelineMode::Original;
      cfg.real_bands = true;
      cfg.fused_exchange = true;
      cfg.overlap_exchange = true;
      cfg.wire_format = WireFormat::Fp64;
      RecoveryDriver driver(world, desc, cfg, rcfg);
      std::vector<std::vector<cplx>> mine;
      const auto rep = driver.run(mine);
      std::lock_guard lock(mu);
      if (rep.died) {
        ++died;
        return;
      }
      ASSERT_TRUE(rep.completed);
      if (bands.empty()) {
        bands = std::move(mine);
      } else {
        EXPECT_EQ(bands, mine) << "survivor replicas disagree";
      }
    });
    return std::pair(std::move(bands), died);
  };

  const auto [clean, clean_died] = run_recovered(quiet_options());
  EXPECT_EQ(clean_died, 0);
  const auto want = packed_oracle(kBands);
  ASSERT_EQ(clean.size(), want.size());
  EXPECT_LT(worst_abs_error(clean, want), 1e-12);

  RunOptions faulty = quiet_options();
  faulty.faults.kill_rank = 1;
  // Half the bands means half the exchanges: op 5 lands mid-run here where
  // op 15 would outlive the whole (shorter) real-band schedule.
  faulty.faults.kill_op = 5;
  faulty.faults.only_kind = static_cast<int>(CommOpKind::Ialltoallv);
  const auto [healed, healed_died] = run_recovered(faulty);
  EXPECT_EQ(healed_died, 1);
  // fp64 wire: the shrink-and-replay result is bit-exact.
  EXPECT_EQ(healed, clean);
}

TEST(R2cPipeline, RecoveryDriverReplaysOddBandTailPair) {
  // 7 real bands pack into 4 pairs with a half-empty tail (band 6 rides as
  // the real part of pair 3, zero imaginary).  A kill must replay batches
  // whose final pipeline carries that odd tail -- the re-decomposed world
  // (3 ranks, ntg 1) regenerates the same pairing because pairs always
  // start at even band offsets.
  constexpr int kOddBands = 7;
  auto desc =
      std::make_shared<const Descriptor>(Cell{kAlat}, kEcut, kProc, kTg);
  RecoveryConfig rcfg;
  rcfg.enabled = true;
  rcfg.checkpoint_bands = 2;  // pairs per checkpoint: tail lands in batch 2
  rcfg.retry.max_attempts = 6;
  rcfg.retry.base_delay_ms = 0.1;

  auto run_recovered = [&](const RunOptions& opts) {
    std::vector<std::vector<cplx>> bands;
    int died = 0;
    std::mutex mu;
    Runtime::run(kProc, opts, [&](Comm& world) {
      PipelineConfig cfg;
      cfg.num_bands = kOddBands;
      cfg.mode = PipelineMode::Original;
      cfg.real_bands = true;
      cfg.fused_exchange = true;
      cfg.overlap_exchange = true;
      cfg.wire_format = WireFormat::Fp64;
      RecoveryDriver driver(world, desc, cfg, rcfg);
      std::vector<std::vector<cplx>> mine;
      const auto rep = driver.run(mine);
      std::lock_guard lock(mu);
      if (rep.died) {
        ++died;
        return;
      }
      ASSERT_TRUE(rep.completed);
      if (bands.empty()) {
        bands = std::move(mine);
      } else {
        EXPECT_EQ(bands, mine) << "survivor replicas disagree";
      }
    });
    return std::pair(std::move(bands), died);
  };

  const auto [clean, clean_died] = run_recovered(quiet_options());
  EXPECT_EQ(clean_died, 0);
  const auto want = packed_oracle(kOddBands);
  ASSERT_EQ(clean.size(), 4U);
  EXPECT_LT(worst_abs_error(clean, want), 1e-12);

  RunOptions faulty = quiet_options();
  faulty.faults.kill_rank = 2;
  faulty.faults.kill_op = 5;
  faulty.faults.only_kind = static_cast<int>(CommOpKind::Ialltoallv);
  const auto [healed, healed_died] = run_recovered(faulty);
  EXPECT_EQ(healed_died, 1);
  EXPECT_EQ(healed, clean);  // fp64 wire: replay is bit-exact, tail included
}

TEST(WireGridFft, DenseTransposeNarrowsWithinQuantizerBound) {
  const fx::pw::GridDims dims{12, 10, 8};
  fx::core::Rng rng(321);
  std::vector<cplx> input(dims.volume());
  for (auto& v : input) {
    v = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  }

  auto round_trip = [&](WireFormat wire) {
    std::vector<cplx> out(dims.volume(), cplx{0.0, 0.0});
    std::mutex mu;
    Runtime::run(2, [&](Comm& comm) {
      fx::fftx::GridFft grid(comm, dims, nullptr, wire);
      fx::fft::Workspace ws;
      const int me = comm.rank();
      std::vector<cplx> pencils(grid.pencil_elems());
      for (std::size_t c = 0; c < grid.ncols(me); ++c) {
        const std::size_t col = grid.col_first(me) + c;
        for (std::size_t iz = 0; iz < dims.nz; ++iz) {
          pencils[c * dims.nz + iz] = input[col + dims.plane() * iz];
        }
      }
      std::vector<cplx> planes(grid.plane_elems());
      grid.to_real(pencils, planes, ws);
      grid.to_recip(planes, pencils, ws);
      std::lock_guard lock(mu);
      for (std::size_t c = 0; c < grid.ncols(me); ++c) {
        const std::size_t col = grid.col_first(me) + c;
        for (std::size_t iz = 0; iz < dims.nz; ++iz) {
          out[col + dims.plane() * iz] = pencils[c * dims.nz + iz];
        }
      }
    });
    return out;
  };

  const auto fp64 = round_trip(WireFormat::Fp64);
  double exact_err = 0.0;
  for (std::size_t i = 0; i < input.size(); ++i) {
    exact_err = std::max(exact_err, std::abs(fp64[i] - input[i]));
  }
  EXPECT_LT(exact_err, 1e-12);  // fp64 wire: bit-level round trip

  const auto fp32 = round_trip(WireFormat::Fp32);
  double narrow_err = 0.0;
  for (std::size_t i = 0; i < input.size(); ++i) {
    narrow_err = std::max(narrow_err, std::abs(fp32[i] - input[i]));
  }
  EXPECT_GT(narrow_err, 0.0);
  EXPECT_LT(narrow_err, 1e-4);
}

}  // namespace
