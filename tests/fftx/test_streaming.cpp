// Streaming band-dataflow executor acceptance: every stream depth and
// exchange variant is bit-identical to the Original oracle (including the
// r2c, narrow-wire, guarded and ABFT compositions), the split nonblocking
// path actually posts nonblocking exchanges and hides wait behind other
// bands' compute (fftx.stream.* metrics advance), and the RecoveryDriver
// survives a rank kill mid-stream with a bit-exact replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "fftx/pipeline.hpp"
#include "fftx/recovery.hpp"
#include "fftx/reference.hpp"
#include "simmpi/runtime.hpp"

namespace {

using fx::fft::cplx;
using fx::fftx::AbftMode;
using fx::fftx::BandFftPipeline;
using fx::fftx::Descriptor;
using fx::fftx::PipelineConfig;
using fx::fftx::PipelineMode;
using fx::fftx::RecoveryConfig;
using fx::fftx::RecoveryDriver;
using fx::mpi::Comm;
using fx::mpi::RunOptions;
using fx::mpi::Runtime;
using fx::mpi::WireFormat;
using fx::pw::Cell;

constexpr double kAlat = 8.0;
constexpr double kEcut = 8.0;
constexpr int kBands = 8;
constexpr int kProc = 4;
constexpr int kTg = 2;

RunOptions quiet_options() {
  RunOptions opts;
  opts.watchdog.window_ms = 60000.0;
  return opts;
}

/// Knobs a variant pins explicitly so environment overrides cannot leak in.
struct Variant {
  int stream_bands = 2;
  bool stream_nonblocking = true;
  bool fused = false;
  bool overlap = false;
  bool guard = false;
  bool real_bands = false;
  WireFormat wire = WireFormat::Fp64;
  AbftMode abft = AbftMode::Off;
};

PipelineConfig make_config(PipelineMode mode, int nthreads,
                           const Variant& v) {
  PipelineConfig cfg;
  cfg.num_bands = kBands;
  cfg.mode = mode;
  cfg.nthreads = nthreads;
  cfg.stream_bands = v.stream_bands;
  cfg.stream_nonblocking = v.stream_nonblocking;
  cfg.fused_exchange = v.fused;
  cfg.overlap_exchange = v.overlap;
  cfg.overlap_chunks = 2;
  cfg.guard_exchanges = v.guard;
  cfg.real_bands = v.real_bands;
  cfg.wire_format = v.wire;
  cfg.abft = v.abft;
  return cfg;
}

/// One pipeline run gathering every carried band in global G order.
std::vector<std::vector<cplx>> run_variant(PipelineMode mode, int nthreads,
                                           const Variant& v) {
  auto desc =
      std::make_shared<const Descriptor>(Cell{kAlat}, kEcut, kProc, kTg);
  const int npsi = v.real_bands ? kBands / 2 : kBands;
  std::vector<std::vector<cplx>> bands(
      static_cast<std::size_t>(npsi),
      std::vector<cplx>(desc->sphere().size()));
  std::mutex mu;
  Runtime::run(kProc, quiet_options(), [&](Comm& world) {
    BandFftPipeline pipe(world, desc, make_config(mode, nthreads, v));
    pipe.initialize_bands();
    pipe.run();
    const auto index = desc->world_g_index(world.rank());
    std::lock_guard lock(mu);
    for (int n = 0; n < npsi; ++n) {
      const auto mine = pipe.band(n);
      for (std::size_t k = 0; k < index.size(); ++k) {
        bands[static_cast<std::size_t>(n)][index[k]] = mine[k];
      }
    }
  });
  return bands;
}

TEST(Streaming, DepthSweepBitIdenticalToOracleAcrossExchangeVariants) {
  const Variant kVariants[] = {
      {.fused = false},                             // staged blocking stages
      {.fused = true},                              // split post/wait tasks
      {.stream_nonblocking = false, .fused = true}, // fused, blocking tasks
      {.fused = true, .guard = true},               // guarded falls back
      {.fused = true, .overlap = true},             // overlap folds into split
  };
  const auto oracle =
      run_variant(PipelineMode::Original, 1, Variant{.fused = false});
  for (const int depth : {1, 2, 3, 8}) {
    for (const auto& base : kVariants) {
      Variant v = base;
      v.stream_bands = depth;
      const auto got = run_variant(PipelineMode::Streaming, 3, v);
      EXPECT_EQ(got, oracle)
          << "depth=" << depth << " fused=" << v.fused
          << " nb=" << v.stream_nonblocking << " guard=" << v.guard
          << " overlap=" << v.overlap;
    }
  }
}

TEST(Streaming, R2cWireAbftCompositionsMatchSameConfigOracle) {
  const Variant kVariants[] = {
      {.fused = true, .real_bands = true},
      {.fused = true, .wire = WireFormat::Fp32},
      {.fused = true, .wire = WireFormat::Bf16},
      {.fused = true, .abft = AbftMode::Detect},
      {.fused = true, .abft = AbftMode::Repair},
      {.fused = true, .real_bands = true, .wire = WireFormat::Fp32,
       .abft = AbftMode::Detect},
  };
  for (const auto& base : kVariants) {
    const auto oracle = run_variant(PipelineMode::Original, 1, base);
    for (const int depth : {1, 4}) {
      Variant v = base;
      v.stream_bands = depth;
      const auto got = run_variant(PipelineMode::Streaming, 3, v);
      EXPECT_EQ(got, oracle)
          << "depth=" << depth << " r2c=" << v.real_bands
          << " wire=" << static_cast<int>(v.wire)
          << " abft=" << static_cast<int>(v.abft);
    }
  }
}

TEST(Streaming, SplitPathPostsNonblockingAndHidesWait) {
  auto& reg = fx::core::MetricsRegistry::global();
  const auto posted0 = reg.counter("simmpi.ialltoallv.posted").value();
  const auto split0 = reg.counter("fftx.stream.posts").value();
  const auto hidden0 = reg.histogram("fftx.stream.hidden_ms").count();
  const auto bands0 = reg.counter("fftx.stream.bands").value();

  const auto oracle =
      run_variant(PipelineMode::Original, 1, Variant{.fused = false});
  const auto got = run_variant(PipelineMode::Streaming, 3,
                               Variant{.stream_bands = 4, .fused = true});
  EXPECT_EQ(got, oracle);

  // 4 iterations x 4 exchanges (pack, scatter fw, scatter bw, unpack),
  // all through the nonblocking engine, on every rank.
  EXPECT_GE(reg.counter("fftx.stream.posts").value() - split0,
            static_cast<std::uint64_t>(4 * 4 * kProc));
  EXPECT_GT(reg.counter("simmpi.ialltoallv.posted").value(), posted0);
  // Every split exchange records its post-to-wait-entry hidden window.
  EXPECT_GE(reg.histogram("fftx.stream.hidden_ms").count() - hidden0,
            static_cast<std::uint64_t>(4 * 4 * kProc));
  EXPECT_EQ(reg.counter("fftx.stream.bands").value() - bands0,
            static_cast<std::uint64_t>(kBands * kProc));
}

TEST(Streaming, DepthClampsToIterationCountAndWorkerFloor) {
  // Absurd depth: must clamp (4 iterations here) and still be bit-exact.
  const auto oracle =
      run_variant(PipelineMode::Original, 1, Variant{.fused = false});
  const auto deep = run_variant(
      PipelineMode::Streaming, 2,
      Variant{.stream_bands = 4096, .fused = true});
  EXPECT_EQ(deep, oracle);
  // Blocking fallback on a single worker: depth folds to 1 (the staged
  // order) rather than deadlocking across ranks.
  const auto serial = run_variant(
      PipelineMode::Streaming, 1,
      Variant{.stream_bands = 8, .fused = false});
  EXPECT_EQ(serial, oracle);
}

TEST(Streaming, RecoveryDriverSurvivesKillMidStream) {
  auto desc =
      std::make_shared<const Descriptor>(Cell{kAlat}, kEcut, kProc, kTg);
  RecoveryConfig rcfg;
  rcfg.enabled = true;
  rcfg.checkpoint_bands = 2;
  rcfg.retry.max_attempts = 6;
  rcfg.retry.base_delay_ms = 0.1;

  auto run_recovered = [&](const RunOptions& opts) {
    struct Out {
      std::vector<std::vector<cplx>> bands;
      int completed = 0;
      int died = 0;
    } out;
    std::mutex mu;
    Runtime::run(kProc, opts, [&](Comm& world) {
      PipelineConfig cfg = make_config(
          PipelineMode::Streaming, 2,
          Variant{.stream_bands = 2, .fused = true});
      RecoveryDriver driver(world, desc, cfg, rcfg);
      std::vector<std::vector<cplx>> mine;
      const auto rep = driver.run(mine);
      std::lock_guard lock(mu);
      if (rep.died) {
        ++out.died;
        return;
      }
      ASSERT_TRUE(rep.completed);
      ++out.completed;
      if (out.bands.empty()) {
        out.bands = std::move(mine);
      } else {
        EXPECT_EQ(out.bands, mine) << "survivor replicas disagree";
      }
    });
    return out;
  };

  const auto clean = run_recovered(quiet_options());
  EXPECT_EQ(clean.completed, kProc);
  EXPECT_EQ(clean.died, 0);

  RunOptions faulty = quiet_options();
  faulty.faults.kill_rank = 1;
  faulty.faults.kill_op = 18;  // mid-run, inside the streamed band loop
  const auto healed = run_recovered(faulty);
  EXPECT_EQ(healed.died, 1);
  EXPECT_EQ(healed.completed, kProc - 1);
  EXPECT_EQ(healed.bands, clean.bands) << "kill-and-replay diverged";

  const Descriptor oracle(Cell{kAlat}, kEcut, kProc, kTg);
  for (int n = 0; n < kBands; ++n) {
    const auto want = fx::fftx::reference_band_output(oracle, n, true);
    const auto& got = healed.bands[static_cast<std::size_t>(n)];
    double err = 0.0;
    for (std::size_t k = 0; k < want.size(); ++k) {
      err = std::max(err, std::abs(got[k] - want[k]));
    }
    EXPECT_LT(err, 1e-12) << "band " << n;
  }
}

}  // namespace
