// Gamma-point scenario: transforming two real wave functions with one
// complex FFT (QE's "two bands at a time" trick, Sec. II background).
//
// Demonstrates the fft::gamma utilities on a realistic 1D slice workload
// and measures the saving against two separate transforms.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/format.hpp"
#include "core/rng.hpp"
#include "core/timer.hpp"
#include "fft/gamma.hpp"
#include "trace/artifacts.hpp"

int main() {
  using fx::fft::cplx;
  constexpr std::size_t kN = 720;  // a QE-style good size (2^4 * 3^2 * 5)
  constexpr int kPairs = 2000;

  fx::core::Rng rng(2026);
  std::vector<double> a(kN);
  std::vector<double> b(kN);
  for (std::size_t j = 0; j < kN; ++j) {
    a[j] = rng.uniform(-1.0, 1.0);
    b[j] = rng.uniform(-1.0, 1.0);
  }

  fx::fft::Fft1d fwd(kN, fx::fft::Direction::Forward);
  fx::fft::Fft1d bwd(kN, fx::fft::Direction::Backward);
  fx::fft::Workspace ws;
  std::vector<cplx> sa(kN);
  std::vector<cplx> sb(kN);

  // Correctness first: round trip through the packed transforms.
  fx::fft::fft_two_real(fwd, a, b, sa, sb, ws);
  std::cout << "spectra Hermitian: " << std::boolalpha
            << (fx::fft::is_hermitian(sa, 1e-10) &&
                fx::fft::is_hermitian(sb, 1e-10))
            << "\n";
  std::vector<double> a2(kN);
  std::vector<double> b2(kN);
  fx::fft::ifft_two_real(bwd, sa, sb, a2, b2, ws);
  double err = 0.0;
  for (std::size_t j = 0; j < kN; ++j) {
    err = std::max(err, std::abs(a2[j] - a[j]));
    err = std::max(err, std::abs(b2[j] - b[j]));
  }
  std::cout << "round-trip error: " << err << "\n";

  // Throughput: packed pair vs two complex transforms.
  fx::core::WallTimer t1;
  for (int i = 0; i < kPairs; ++i) {
    fx::fft::fft_two_real(fwd, a, b, sa, sb, ws);
  }
  const double packed = t1.seconds();

  std::vector<cplx> ca(kN);
  std::vector<cplx> cb(kN);
  for (std::size_t j = 0; j < kN; ++j) {
    ca[j] = cplx{a[j], 0.0};
    cb[j] = cplx{b[j], 0.0};
  }
  std::vector<cplx> oa(kN);
  std::vector<cplx> ob(kN);
  fx::core::WallTimer t2;
  for (int i = 0; i < kPairs; ++i) {
    fwd.execute(ca.data(), oa.data(), ws);
    fwd.execute(cb.data(), ob.data(), ws);
  }
  const double separate = t2.seconds();

  std::cout << kPairs << " band pairs of length " << kN << ":\n"
            << "  packed (one FFT per pair):   " << fx::core::fixed(packed, 3)
            << " s\n"
            << "  separate (two FFTs per pair): "
            << fx::core::fixed(separate, 3) << " s\n"
            << "  saving: "
            << fx::core::fixed((separate - packed) / separate * 100.0, 1)
            << " % (ideal: approaching 50 % minus pack/unpack overhead)\n";
  fx::trace::dump_metrics("gamma_point");
  return 0;
}
