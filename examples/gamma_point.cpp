// Gamma-point scenario: transforming real wave-function bands at half the
// complex-FFT cost (QE's Gamma-point trick, Sec. II background).
//
// Two generations of the trick on a realistic 1D slice workload:
//
//   packed pairs (deprecated) -- two real bands ride one full-length
//     complex FFT and are split by Hermitian symmetry afterwards
//     (fft_two_real / ifft_two_real, kept as compat shims);
//
//   native r2c (current)      -- each real band takes a half-length
//     complex transform directly (fft::BatchPlanR2c1d), storing only the
//     N/2 + 1 non-redundant half spectrum.  Same 2x flop saving, half the
//     spectrum memory, and odd band counts need no zero-padded partner.
//
// The A/B below measures both against plain complex transforms.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/format.hpp"
#include "core/rng.hpp"
#include "core/timer.hpp"
#include "fft/gamma.hpp"
#include "fft/plan_cache.hpp"
#include "fft/r2c1d.hpp"
#include "trace/artifacts.hpp"

int main() {
  using fx::fft::cplx;
  fx::trace::ArtifactScope artifacts(nullptr, "gamma_point");
  constexpr std::size_t kN = 720;  // a QE-style good size (2^4 * 3^2 * 5)
  constexpr int kBands = 5;        // odd on purpose: no partner needed
  constexpr int kReps = 800;

  fx::core::Rng rng(2026);
  std::vector<double> bands(static_cast<std::size_t>(kBands) * kN);
  for (double& x : bands) x = rng.uniform(-1.0, 1.0);

  auto& cache = fx::fft::PlanCache::global();
  auto r2c = cache.r2c1d(kN, fx::fft::Direction::Forward);
  auto c2r = cache.r2c1d(kN, fx::fft::Direction::Backward);
  fx::fft::Workspace ws;

  const std::size_t nh = r2c->half_spectrum();
  std::vector<cplx> half(static_cast<std::size_t>(kBands) * nh);

  // Correctness first: forward all bands (odd count -- the deprecated
  // pairing path would have needed a zero partner), check Hermitian
  // structure via the expanded spectrum, and round trip.
  fx::fft::fft_real_bands(*r2c, kBands, bands.data(), kN, half.data(), nh,
                          ws);
  std::vector<cplx> full(kN);
  fx::fft::expand_half_spectrum({half.data(), nh}, full);
  std::cout << "expanded spectrum Hermitian: " << std::boolalpha
            << fx::fft::is_hermitian(full, 1e-10) << "\n";

  std::vector<double> back(bands.size());
  fx::fft::ifft_real_bands(*c2r, kBands, half.data(), nh, back.data(), kN,
                           ws);
  double err = 0.0;
  for (std::size_t j = 0; j < bands.size(); ++j) {
    err = std::max(err, std::abs(back[j] - bands[j]));
  }
  std::cout << "round-trip error: " << err << "\n";

  // Throughput A/B/C over kReps sweeps of all kBands bands.
  fx::core::WallTimer t1;
  for (int i = 0; i < kReps; ++i) {
    fx::fft::fft_real_bands(*r2c, kBands, bands.data(), kN, half.data(), nh,
                            ws);
  }
  const double native = t1.seconds();

  // Deprecated packed-pair shim (one full FFT per two bands; the odd band
  // pairs with zeros).
  fx::fft::Fft1d fwd(kN, fx::fft::Direction::Forward);
  std::vector<double> zero(kN, 0.0);
  std::vector<cplx> sa(kN);
  std::vector<cplx> sb(kN);
  fx::core::WallTimer t2;
  for (int i = 0; i < kReps; ++i) {
    for (int p = 0; p < kBands; p += 2) {
      const double* a = bands.data() + static_cast<std::size_t>(p) * kN;
      const double* b = p + 1 < kBands
                            ? bands.data() +
                                  static_cast<std::size_t>(p + 1) * kN
                            : zero.data();
      fx::fft::fft_two_real(fwd, {a, kN}, {b, kN}, sa, sb, ws);
    }
  }
  const double packed = t2.seconds();

  // Baseline: one full complex FFT per band.
  std::vector<cplx> cin(kN);
  std::vector<cplx> cout_(kN);
  fx::core::WallTimer t3;
  for (int i = 0; i < kReps; ++i) {
    for (int b = 0; b < kBands; ++b) {
      const double* src = bands.data() + static_cast<std::size_t>(b) * kN;
      for (std::size_t j = 0; j < kN; ++j) cin[j] = cplx{src[j], 0.0};
      fwd.execute(cin.data(), cout_.data(), ws);
    }
  }
  const double separate = t3.seconds();

  auto pct = [&](double t) { return (separate - t) / separate * 100.0; };
  std::cout << kReps << " sweeps of " << kBands << " real bands, length "
            << kN << ":\n"
            << "  native r2c (half-length):    " << fx::core::fixed(native, 3)
            << " s  (" << fx::core::fixed(pct(native), 1) << " % saved)\n"
            << "  packed pairs (deprecated):   " << fx::core::fixed(packed, 3)
            << " s  (" << fx::core::fixed(pct(packed), 1) << " % saved)\n"
            << "  separate complex baseline:   "
            << fx::core::fixed(separate, 3) << " s\n";
  return 0;
}
