// The FFTXlib miniapp: a command-line driver around the band-FFT kernel,
// mirroring the role of the original stand-alone test program ("a
// practical tool that does not require the whole execution of a DFT
// simulation", paper Sec. II.A).
//
// Usage:
//   fftx_miniapp [options]
//     -ecutwfc <ry>     plane-wave cutoff            (default 80)
//     -alat <bohr>      lattice parameter            (default 20)
//     -nbnd <n>         number of bands              (default 128)
//     -nranks <n>       MPI ranks                    (default 4)
//     -ntg <n>          FFT task groups              (default 1)
//     -mode <m>         original|step|fft|combined|stream (default original)
//     -nthreads <n>     workers per rank, task modes (default 1)
//     -backend <b>      real|model                   (default model)
//     -verify           check band 0 against the serial oracle (real only;
//                       honors FFTX_R2C and FFTX_WIRE_PRECISION -- the
//                       oracle and tolerance follow the configured mode)
//     -table            print the POP efficiency factors
//     -perf-report      print the observatory's live phase attribution
//                       (implies FFTX_OBS=watch when the env var is unset)
//     -save-trace <f>   write the run's trace to <f> (fxtrace format)
//     -trace-json <f>   write the run's trace as Chrome/Perfetto JSON
//
// Setting FFTX_TRACE_DIR=<dir> additionally drops the full artifact set
// (<dir>/fftx_miniapp.{fxtrace,json,metrics.csv,metrics.json}) without any
// flags -- the uniform observability hook every example and bench honors.
// The artifacts are written from an ArtifactScope, so they survive
// SdcError/CommError aborts (e.g. under FFTX_FAULT_PLAN fault injection).
//
// Examples:
//   fftx_miniapp -backend model -nranks 64 -ntg 8            # paper 8x8
//   fftx_miniapp -backend real -nranks 4 -ecutwfc 16 -alat 10 -nbnd 16 -verify
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "core/format.hpp"
#include "core/metrics.hpp"
#include "fftx/pipeline.hpp"
#include "fftx/reference.hpp"
#include "perfmodel/machine.hpp"
#include "perfmodel/program.hpp"
#include "perfmodel/simulator.hpp"
#include "simmpi/runtime.hpp"
#include "trace/analysis.hpp"
#include "trace/artifacts.hpp"
#include "trace/chrome_export.hpp"
#include "trace/observatory.hpp"
#include "trace/trace_io.hpp"

namespace {

struct Options {
  double ecutwfc = 80.0;
  double alat = 20.0;
  int nbnd = 128;
  int nranks = 4;
  int ntg = 1;
  fx::fftx::PipelineMode mode = fx::fftx::PipelineMode::Original;
  int nthreads = 1;
  bool model_backend = true;
  bool verify = false;
  bool table = false;
  bool perf_report = false;
  std::string trace_path;
  std::string trace_json_path;
};

Options parse(int argc, char** argv) {
  Options o;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << "missing value for " << argv[i] << '\n';
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-ecutwfc") {
      o.ecutwfc = std::atof(need(i));
    } else if (a == "-alat") {
      o.alat = std::atof(need(i));
    } else if (a == "-nbnd") {
      o.nbnd = std::atoi(need(i));
    } else if (a == "-nranks") {
      o.nranks = std::atoi(need(i));
    } else if (a == "-ntg") {
      o.ntg = std::atoi(need(i));
    } else if (a == "-nthreads") {
      o.nthreads = std::atoi(need(i));
    } else if (a == "-mode") {
      const std::string m = need(i);
      if (m == "original") o.mode = fx::fftx::PipelineMode::Original;
      else if (m == "step") o.mode = fx::fftx::PipelineMode::TaskPerStep;
      else if (m == "fft") o.mode = fx::fftx::PipelineMode::TaskPerFft;
      else if (m == "combined") o.mode = fx::fftx::PipelineMode::Combined;
      else if (m == "stream") o.mode = fx::fftx::PipelineMode::Streaming;
      else {
        std::cerr << "unknown mode " << m << '\n';
        std::exit(2);
      }
    } else if (a == "-backend") {
      const std::string b = need(i);
      o.model_backend = b != "real";
    } else if (a == "-verify") {
      o.verify = true;
    } else if (a == "-save-trace") {
      o.trace_path = need(i);
    } else if (a == "-trace-json") {
      o.trace_json_path = need(i);
    } else if (a == "-table") {
      o.table = true;
    } else if (a == "-perf-report") {
      o.perf_report = true;
    } else {
      std::cerr << "unknown option " << a << " (see header comment)\n";
      std::exit(2);
    }
  }
  return o;
}

void print_factors(const fx::trace::EfficiencySummary& s) {
  using fx::core::pct;
  std::cout << "  parallel efficiency " << pct(s.parallel_efficiency)
            << "  (LB " << pct(s.load_balance) << ", comm "
            << pct(s.comm_efficiency) << " = sync "
            << pct(s.sync_efficiency) << " x transfer "
            << pct(s.transfer_efficiency) << ")\n"
            << "  avg IPC " << fx::core::fixed(s.avg_ipc, 3) << " over "
            << s.rows << " streams\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (o.perf_report &&
      fx::trace::default_obs_mode() == fx::trace::ObsMode::Off) {
    fx::trace::Observatory::global().configure(fx::trace::ObsMode::Watch);
  }

  const fx::pw::Cell cell{o.alat};
  auto desc = std::make_shared<const fx::fftx::Descriptor>(cell, o.ecutwfc,
                                                           o.nranks, o.ntg);
  std::cout << "FFTXlib miniapp: ecutwfc " << o.ecutwfc << " Ry, alat "
            << o.alat << " bohr -> grid " << desc->dims().nx << "x"
            << desc->dims().ny << "x" << desc->dims().nz << ", "
            << desc->sphere().size() << " G-vectors, "
            << desc->total_sticks() << " sticks\n"
            << "layout: " << o.nranks << " ranks, ntg " << o.ntg << ", mode "
            << to_string(o.mode) << ", " << o.nthreads
            << " thread(s)/rank, backend "
            << (o.model_backend ? "model (KNL)" : "real (this host)") << "\n";

  fx::trace::Tracer tracer(o.nranks);
  // Dumped from the destructor, so the artifacts (trace, metrics, flight
  // recorder) land even when the run below throws.
  fx::trace::ArtifactScope artifacts(&tracer, "fftx_miniapp");
  double runtime = 0.0;

  if (o.model_backend) {
    fx::model::ProgramConfig pcfg;
    pcfg.mode = o.mode;
    pcfg.num_bands = o.nbnd;
    const auto bundle = fx::model::build_program(*desc, pcfg);
    fx::model::SimConfig scfg;
    scfg.mode = o.mode;
    scfg.threads_per_rank =
        o.mode == fx::fftx::PipelineMode::Original ? 1 : o.nthreads;
    const auto machine = fx::model::MachineConfig::knl();
    runtime = fx::model::simulate(bundle, machine, scfg, &tracer).makespan;
    std::cout << "FFT phase (model): " << fx::core::fixed(runtime * 1e3, 2)
              << " ms\n";
    if (o.table) {
      print_factors(fx::trace::analyze_efficiency(tracer, machine.freq_ghz));
    }
  } else {
    double err = -1.0;
    fx::mpi::Runtime::run(o.nranks, [&](fx::mpi::Comm& world) {
      fx::fftx::PipelineConfig cfg;
      cfg.num_bands = o.nbnd;
      cfg.mode = o.mode;
      cfg.nthreads = o.nthreads;
      fx::fftx::BandFftPipeline pipe(world, desc, cfg, &tracer);
      pipe.initialize_bands();
      const double t = pipe.run();
      if (world.rank() == 0) runtime = t;
      if (o.verify) {
        // Pick the matching oracle: the packed-pair reference when the
        // pipeline carries real bands, the complex reference otherwise.
        const auto want =
            cfg.real_bands
                ? fx::fftx::reference_packed_band_output(*desc, 0, o.nbnd,
                                                         true)
                : fx::fftx::reference_band_output(*desc, 0, true);
        const auto index = desc->world_g_index(world.rank());
        const auto mine = pipe.band(0);
        double local[2] = {0.0, 0.0};  // {max abs error, peak |oracle|}
        for (std::size_t k = 0; k < index.size(); ++k) {
          local[0] = std::max(local[0], std::abs(mine[k] - want[index[k]]));
          local[1] = std::max(local[1], std::abs(want[index[k]]));
        }
        double global[2] = {0.0, 0.0};
        world.allreduce(local, global, 2, fx::mpi::ReduceOp::Max);
        if (world.rank() == 0) {
          // At a narrow wire the result is only quantizer-accurate, so
          // judge the relative error against the oracle's peak.
          err = cfg.wire_format == fx::mpi::WireFormat::Fp64
                    ? global[0]
                    : global[0] / std::max(global[1], 1e-300);
        }
      }
    });
    std::cout << "FFT phase (wall): " << fx::core::fixed(runtime, 4) << " s\n";
    if (o.verify) {
      const fx::mpi::WireFormat wire = fx::mpi::default_wire_format();
      const bool relative = wire != fx::mpi::WireFormat::Fp64;
      const double tol = wire == fx::mpi::WireFormat::Fp64   ? 1e-10
                         : wire == fx::mpi::WireFormat::Fp32 ? 1e-4
                                                             : 5e-2;
      std::cout << "verification vs serial oracle (band 0, "
                << (fx::fftx::default_real_bands() ? "r2c" : "complex")
                << " @ " << fx::mpi::to_string(wire) << " wire): "
                << (relative ? "relative" : "max") << " error " << err
                << (err < tol ? "  [OK]" : "  [FAILED]") << '\n';
      if (err >= tol) return 1;
    }
    if (o.table) {
      print_factors(fx::trace::analyze_efficiency(tracer, 1.0));
    }
  }
  if (!o.trace_path.empty() || !o.trace_json_path.empty()) {
    tracer.normalize_time();
    if (!o.trace_path.empty()) {
      fx::trace::save_trace(tracer, o.trace_path);
      std::cout << "trace written to " << o.trace_path << '\n';
    }
    if (!o.trace_json_path.empty()) {
      fx::trace::save_chrome_trace(tracer, o.trace_json_path);
      std::cout << "Chrome trace written to " << o.trace_json_path << '\n';
    }
  }
  if (o.perf_report) {
    const auto& obs = fx::trace::Observatory::global();
    std::cout << "\nobservatory phase attribution ("
              << fx::trace::to_string(obs.mode()) << " mode):\n"
              << obs.attribution_report();
  }
  return 0;
}
