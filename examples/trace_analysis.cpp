// Performance-analysis scenario: trace a real pipeline run (the Extrae
// role), compute the POP efficiency factors (the Paraver/Dimemas role),
// and render the timeline and IPC histogram -- the complete toolchain of
// the paper's Sec. III applied to a live run on this host.
//
// Usage: trace_analysis [nranks] [mode: original|step|fft|combined]
#include <cstring>
#include <iostream>
#include <memory>

#include "core/format.hpp"
#include "fftx/pipeline.hpp"
#include "simmpi/runtime.hpp"
#include "trace/analysis.hpp"
#include "trace/artifacts.hpp"
#include "trace/timeline.hpp"

int main(int argc, char** argv) {
  using fx::fftx::PipelineMode;

  const int nranks = argc > 1 ? std::atoi(argv[1]) : 4;
  PipelineMode mode = PipelineMode::Original;
  int threads = 1;
  int ntg = nranks >= 2 ? 2 : 1;
  if (argc > 2) {
    if (std::strcmp(argv[2], "step") == 0) mode = PipelineMode::TaskPerStep;
    if (std::strcmp(argv[2], "fft") == 0) mode = PipelineMode::TaskPerFft;
    if (std::strcmp(argv[2], "combined") == 0) mode = PipelineMode::Combined;
    if (mode != PipelineMode::Original) {
      threads = 3;
      ntg = 1;
    }
  }

  const auto desc = std::make_shared<const fx::fftx::Descriptor>(
      fx::pw::Cell{10.0}, 16.0, nranks, ntg);
  fx::trace::Tracer tracer(nranks);
  fx::trace::ArtifactScope artifacts(&tracer, "trace_analysis");

  fx::mpi::Runtime::run(nranks, [&](fx::mpi::Comm& world) {
    fx::fftx::PipelineConfig cfg;
    cfg.num_bands = 8;
    cfg.mode = mode;
    cfg.nthreads = threads;
    fx::fftx::BandFftPipeline pipe(world, desc, cfg, &tracer);
    pipe.initialize_bands();
    pipe.run();
  });
  tracer.normalize_time();

  std::cout << "traced " << tracer.compute_events().size()
            << " compute phases, " << tracer.comm_events().size()
            << " communication operations, " << tracer.task_events().size()
            << " tasks (" << to_string(mode) << ", " << nranks
            << " ranks)\n\n";

  fx::trace::TimelineOptions opt;
  opt.view = fx::trace::TimelineView::Phase;
  opt.width = 100;
  std::cout << fx::trace::render_timeline(tracer, opt) << '\n';

  // Host-frequency IPC is synthetic (modelled instruction counts over real
  // seconds) but consistent across phases, which is what the relative
  // analysis needs.
  const double freq = 1.0;
  std::cout << fx::trace::render_ipc_histogram(tracer, 40, freq) << '\n';

  const auto s = fx::trace::analyze_efficiency(tracer, freq);
  std::cout << "POP factors of this run:\n"
            << "  rows (streams)        " << s.rows << '\n'
            << "  parallel efficiency   " << fx::core::pct(s.parallel_efficiency)
            << '\n'
            << "    load balance        " << fx::core::pct(s.load_balance)
            << '\n'
            << "    comm efficiency     " << fx::core::pct(s.comm_efficiency)
            << '\n'
            << "      synchronization   " << fx::core::pct(s.sync_efficiency)
            << '\n'
            << "      transfer          "
            << fx::core::pct(s.transfer_efficiency) << '\n';
  fx::trace::write_events_csv(tracer, "trace_analysis_events.csv");
  std::cout << "\nraw events written to trace_analysis_events.csv\n";
  return 0;
}
