// Quickstart: the two entry points of the library in ~60 lines.
//
//  1. Serial FFTs: plan once, execute many times (thread-safe).
//  2. The distributed band-FFT pipeline: reciprocal -> real space, apply a
//     potential, transform back -- Quantum ESPRESSO's FFTXlib kernel --
//     run here with 4 simulated MPI ranks and 2 task groups.
//
// Build tree: ./build/examples/quickstart
#include <complex>
#include <iostream>
#include <memory>
#include <vector>

#include "fft/plan3d.hpp"
#include "fftx/pipeline.hpp"
#include "fftx/reference.hpp"
#include "simmpi/runtime.hpp"
#include "trace/artifacts.hpp"

int main() {
  using fx::fft::cplx;
  fx::trace::ArtifactScope artifacts(nullptr, "quickstart");

  // --- 1. A serial 3D FFT round trip -------------------------------------
  const std::size_t n = 24;
  fx::fft::Fft3d forward(n, n, n, fx::fft::Direction::Forward);
  fx::fft::Fft3d backward(n, n, n, fx::fft::Direction::Backward);

  std::vector<cplx> grid(n * n * n, cplx{0.0, 0.0});
  grid[1 + n * (2 + n * 3)] = cplx{1.0, 0.0};  // a single plane wave

  std::vector<cplx> spectrum(grid.size());
  forward.execute(grid.data(), spectrum.data());
  backward.execute(spectrum.data(), spectrum.data());
  // Unnormalized transforms: backward(forward(x)) == volume * x.
  const double scale = static_cast<double>(grid.size());
  std::cout << "serial 3D round trip error: "
            << std::abs(spectrum[1 + n * (2 + n * 3)] / scale -
                        cplx{1.0, 0.0})
            << "\n";

  // --- 2. The distributed band FFT ---------------------------------------
  // Plane-wave workload: cubic cell (8 bohr), 8 Ry cutoff, 8 bands.
  const auto desc = std::make_shared<const fx::fftx::Descriptor>(
      fx::pw::Cell{8.0}, 8.0, /*nproc=*/4, /*ntg=*/2);
  std::cout << "grid " << desc->dims().nx << "^3, "
            << desc->sphere().size() << " plane waves, "
            << desc->total_sticks() << " sticks over " << desc->nproc()
            << " ranks\n";

  double worst = 0.0;
  fx::mpi::Runtime::run(4, [&](fx::mpi::Comm& world) {
    fx::fftx::PipelineConfig cfg;
    cfg.num_bands = 8;
    cfg.mode = fx::fftx::PipelineMode::Original;
    fx::fftx::BandFftPipeline pipe(world, desc, cfg);
    pipe.initialize_bands();
    pipe.run();

    // Verify this rank's slice of band 0 against the serial oracle.
    const auto want = fx::fftx::reference_band_output(*desc, 0, true);
    const auto mine = pipe.band(0);
    const auto index = desc->world_g_index(world.rank());
    double err = 0.0;
    for (std::size_t k = 0; k < index.size(); ++k) {
      err = std::max(err, std::abs(mine[k] - want[index[k]]));
    }
    if (world.rank() == 0) worst = err;
  });
  std::cout << "distributed pipeline vs serial oracle (band 0): max error "
            << worst << "\n";
  return 0;
}
