// Charge-density scenario: the other half of a plane-wave DFT step.
//
// The paper's kernel applies V(r) to wave functions; the dual operation
// builds the density rho(r) = sum_bands |psi(r)|^2 on the *dense* grid
// (ecutrho = 4*ecutwfc).  This example assembles it with the library's
// dense-grid distributed FFT:
//
//   1. place each band's sphere coefficients into dense-grid pencils,
//   2. GridFft::to_real per band, accumulate |psi|^2,
//   3. GridFft::to_recip of rho, and check the physics invariant that
//      rho's G = 0 coefficient equals the mean density.
//
// Usage: charge_density [nranks] [bands]   (defaults: 4, 6)
#include <cmath>
#include <complex>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/format.hpp"
#include "fftx/grid_fft.hpp"
#include "pw/gvectors.hpp"
#include "pw/wavefunction.hpp"
#include "simmpi/runtime.hpp"
#include "trace/artifacts.hpp"
#include "trace/tracer.hpp"

int main(int argc, char** argv) {
  using fx::fft::cplx;

  const int nranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const int bands = argc > 2 ? std::atoi(argv[2]) : 6;
  const fx::pw::Cell cell{10.0};
  const double ecut = 12.0;

  const fx::pw::GSphere sphere(cell, ecut);
  const auto dims = fx::pw::dense_grid(cell, ecut);
  std::cout << "wave sphere: " << sphere.size() << " G-vectors; dense grid "
            << dims.nx << "x" << dims.ny << "x" << dims.nz << "\n";

  double rho_g0 = 0.0;
  double direct_charge = 0.0;
  fx::trace::Tracer tracer(nranks);
  fx::trace::ArtifactScope artifacts(&tracer, "charge_density");
  fx::mpi::Runtime::run(nranks, [&](fx::mpi::Comm& comm) {
    fx::fftx::GridFft grid(comm, dims, &tracer);
    fx::fft::Workspace ws;
    const int me = comm.rank();
    const std::size_t nz = dims.nz;

    // Per-band pencils: coefficients of my columns, zero outside the sphere.
    std::vector<cplx> pencils(grid.pencil_elems());
    std::vector<cplx> planes(grid.plane_elems());
    std::vector<double> rho(grid.plane_elems(), 0.0);

    for (int band = 0; band < bands; ++band) {
      std::fill(pencils.begin(), pencils.end(), cplx{0.0, 0.0});
      for (const auto& g : sphere.gvectors()) {
        const std::size_t col = fx::pw::GridDims::fold(g.mx, dims.nx) +
                                dims.nx * fx::pw::GridDims::fold(g.my, dims.ny);
        if (col < grid.col_first(me) ||
            col >= grid.col_first(me) + grid.ncols(me)) {
          continue;
        }
        const std::size_t c = col - grid.col_first(me);
        pencils[c * nz + fx::pw::GridDims::fold(g.mz, nz)] =
            fx::pw::wf_coefficient(band, g);
      }
      grid.to_real(pencils, planes, ws, 2 * band);
      for (std::size_t i = 0; i < planes.size(); ++i) {
        rho[i] += std::norm(planes[i]);
      }
    }

    // Total charge two ways: directly in real space, and as rho(G = 0).
    double local = 0.0;
    for (double v : rho) local += v;
    local /= static_cast<double>(dims.volume());
    double total = 0.0;
    comm.allreduce(&local, &total, 1, fx::mpi::ReduceOp::Sum);

    std::vector<cplx> rho_planes(grid.plane_elems());
    for (std::size_t i = 0; i < rho.size(); ++i) {
      rho_planes[i] = cplx{rho[i], 0.0};
    }
    std::vector<cplx> rho_pencils(grid.pencil_elems());
    grid.to_recip(rho_planes, rho_pencils, ws, 9999);
    // Column 0 (ix = iy = 0) holds G = (0,0,mz); with to_recip's 1/N
    // normalization its mz = 0 entry is exactly the mean density.
    double g0 = 0.0;
    if (grid.col_first(me) == 0 && grid.ncols(me) > 0) {
      g0 = rho_pencils[0].real();
    }
    double g0_total = 0.0;
    comm.allreduce(&g0, &g0_total, 1, fx::mpi::ReduceOp::Sum);

    if (me == 0) {
      direct_charge = total;
      rho_g0 = g0_total;
    }
  });

  std::cout << "mean density (real-space sum):  "
            << fx::core::fixed(direct_charge, 9) << "\n"
            << "mean density (rho(G=0)):        "
            << fx::core::fixed(rho_g0, 9) << "\n"
            << "agreement: " << std::abs(direct_charge - rho_g0) << "\n";
  return std::abs(direct_charge - rho_g0) < 1e-9 ? 0 : 1;
}
