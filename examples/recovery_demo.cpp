// Shrink-and-continue recovery, end to end: a multi-band run survives an
// injected rank kill plus a burst of persistent payload corruption, shrinks
// to the surviving ranks, replays the in-flight work, and still produces
// the exact fault-free coefficients.
//
// Scenario: P ranks process NB bands in checkpointed batches.  Mid-run the
// fault injector kills one rank and corrupts several consecutive transpose
// payloads on another (outlasting the checksum guard's retry budget, so the
// guard gives up collectively and the world repairs in place).  The demo
// prints each rank's recovery report and verifies every band against the
// serial oracle.
//
// Usage: recovery_demo [nranks] [bands] [mode]
//   (defaults: 4 ranks, 8 bands, mode original; mode "stream" runs the
//   streaming executor with FFTX_STREAM_BANDS bands in flight, so the kill
//   lands while several bands are mid-pipeline and replay must drain them)
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/format.hpp"
#include "core/table.hpp"
#include "fftx/pipeline.hpp"
#include "fftx/recovery.hpp"
#include "fftx/reference.hpp"
#include "simmpi/runtime.hpp"
#include "trace/artifacts.hpp"

int main(int argc, char** argv) {
  using fx::fft::cplx;

  const int nranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const int bands = argc > 2 ? std::atoi(argv[2]) : 8;
  const std::string mode_arg = argc > 3 ? argv[3] : "original";
  fx::fftx::PipelineMode mode = fx::fftx::PipelineMode::Original;
  if (mode_arg == "stream") {
    mode = fx::fftx::PipelineMode::Streaming;
  } else if (mode_arg != "original") {
    std::cerr << "unknown mode " << mode_arg << " (original|stream)\n";
    return 2;
  }
  const int ntg = nranks % 2 == 0 ? 2 : 1;

  // FFTX_FAULT_* in the environment overrides the built-in scenario (the CI
  // recovery matrix drives kill placement and rank counts this way).
  fx::mpi::RunOptions opts = fx::mpi::RunOptions::from_env();
  opts.watchdog.window_ms = 60000.0;
  if (opts.faults.any()) {
    std::cout << "recovery demo: " << nranks << " ranks (ntg " << ntg << "), "
              << bands << " bands, " << mode_arg
              << " pipeline, faults from FFTX_FAULT_* environment\n\n";
  } else {
    std::cout << "recovery demo: " << nranks << " ranks (ntg " << ntg << "), "
              << bands << " bands, " << mode_arg
              << " pipeline, checkpoint every 2 bands\n";
    std::cout << "injected: kill rank 1 mid-run + 6 corrupted transpose "
                 "payloads on rank 0\n\n";
    opts.faults.corrupt_rank = 0;
    opts.faults.corrupt_op = 2;
    opts.faults.corrupt_count = 6;
    opts.faults.only_kind = static_cast<int>(fx::mpi::CommOpKind::Alltoallv);
    opts.faults.kill_rank = 1;
    opts.faults.kill_op = 15;
  }

  const auto desc = std::make_shared<const fx::fftx::Descriptor>(
      fx::pw::Cell{8.0}, 8.0, nranks, ntg);

  fx::fftx::RecoveryConfig rcfg = fx::fftx::RecoveryConfig::from_env();
  rcfg.enabled = true;
  if (rcfg.checkpoint_bands == 0) rcfg.checkpoint_bands = 2;
  if (rcfg.retry.max_attempts < 6) rcfg.retry.max_attempts = 6;
  rcfg.retry.base_delay_ms = 0.1;

  fx::core::TablePrinter t("per-rank recovery reports");
  t.header({"rank", "outcome", "shrinks", "replayed bands",
            "repaired bands", "final world"});

  // Dumps metrics (and any flight-recorder state) even when recovery gives
  // up and the run below unwinds on CommError/FaultError.
  fx::trace::ArtifactScope artifacts(nullptr, "recovery_demo");

  std::vector<std::vector<cplx>> result;
  std::mutex mu;
  fx::mpi::Runtime::run(nranks, opts, [&](fx::mpi::Comm& world) {
    fx::fftx::PipelineConfig cfg;
    cfg.num_bands = bands;
    cfg.mode = mode;
    cfg.guard_exchanges = true;
    if (mode == fx::fftx::PipelineMode::Streaming) {
      // The guarded (blocking) exchanges cap the in-flight depth at the
      // worker count, so give the ring enough workers to keep several
      // bands mid-pipeline when the kill fires.
      cfg.nthreads = std::max(2, cfg.stream_bands);
    }
    fx::fftx::RecoveryDriver driver(world, desc, cfg, rcfg);
    std::vector<std::vector<cplx>> mine;
    const auto rep = driver.run(mine);
    std::lock_guard lock(mu);
    t.row({fx::core::cat(world.rank()), rep.died ? "killed" : "completed",
           fx::core::cat(rep.shrinks), fx::core::cat(rep.replayed_bands),
           fx::core::cat(rep.repaired_bands),
           rep.died ? "-"
                    : fx::core::cat(rep.final_nproc, " ranks, ntg ",
                                    rep.final_ntg)});
    if (!rep.died && result.empty()) result = std::move(mine);
  });
  t.print(std::cout);

  if (result.empty()) {
    std::cout << "no surviving rank completed -- recovery failed\n";
    return 1;
  }
  // The oracle follows the configured pipeline mode: packed-pair reference
  // when FFTX_R2C carries real bands.  Recovered output is bit-exact at
  // every wire format (per-band arithmetic, including wire quantization,
  // is decomposition-independent); the relative tolerance below only
  // covers the quantizer-level gap between the narrow-wire pipeline and
  // the fp64 serial oracle.
  const bool real = fx::fftx::default_real_bands();
  const auto wire = fx::mpi::default_wire_format();
  const int carried = static_cast<int>(result.size());
  double err = 0.0;
  double peak = 0.0;
  for (int n = 0; n < carried; ++n) {
    const auto want =
        real ? fx::fftx::reference_packed_band_output(*desc, n, bands, true)
             : fx::fftx::reference_band_output(*desc, n, true);
    const auto& got = result[static_cast<std::size_t>(n)];
    for (std::size_t k = 0; k < want.size(); ++k) {
      err = std::max(err, std::abs(got[k] - want[k]));
      peak = std::max(peak, std::abs(want[k]));
    }
  }
  const bool relative = wire != fx::mpi::WireFormat::Fp64;
  if (relative) err /= std::max(peak, 1e-300);
  const double tol = wire == fx::mpi::WireFormat::Fp64   ? 1e-12
                     : wire == fx::mpi::WireFormat::Fp32 ? 1e-4
                                                         : 5e-2;
  std::cout << "\n" << (relative ? "relative" : "max") << " error vs serial "
            << (real ? "packed-pair" : "band") << " oracle over all "
            << carried << " carried bands: " << err << '\n';
  std::cout << (err < tol ? "recovered output matches the fault-free "
                            "result\n"
                          : "MISMATCH (bug!)\n");
  return err < tol ? 0 : 1;
}
