// The Quantum ESPRESSO band loop end to end, in all four execution modes.
//
// This is the miniapp scenario of the paper's Fig. 1/4/5: NB wave-function
// bands are transformed to real space, the local potential is applied, and
// the bands are transformed back -- with the original task-group schedule
// and with the task-based reformulations.  Every mode must produce
// identical coefficients; the example prints the per-mode wall time and
// the cross-mode agreement.
//
// Usage: qe_band_loop [nranks] [bands]   (defaults: 4 ranks, 16 bands)
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <vector>

#include "core/format.hpp"
#include "core/table.hpp"
#include "fftx/pipeline.hpp"
#include "fftx/reference.hpp"
#include "simmpi/runtime.hpp"
#include "trace/artifacts.hpp"

int main(int argc, char** argv) {
  using fx::fft::cplx;
  using fx::fftx::PipelineMode;

  const int nranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const int bands = argc > 2 ? std::atoi(argv[2]) : 16;

  std::cout << "QE band loop: " << nranks << " ranks, " << bands
            << " bands, ecut 16 Ry, alat 10 bohr\n";
  std::cout << "step sequence (Fig. 1): pack -> FFT(Z) -> scatter -> "
               "FFT(XY) -> VOFR -> FFT(XY) -> scatter -> FFT(Z) -> unpack\n\n";

  struct Run {
    PipelineMode mode;
    int ntg;
    int threads;
    const char* note;
  };
  const Run runs[] = {
      {PipelineMode::Original, nranks >= 2 ? 2 : 1, 1,
       "synchronous two-layer MPI schedule"},
      {PipelineMode::TaskPerStep, 1, 4, "each step a dependent task (Fig 4)"},
      {PipelineMode::TaskPerFft, 1, 4, "each FFT an independent task (Fig 5)"},
      {PipelineMode::Combined, 1, 4, "future work: both combined"},
  };

  fx::trace::ArtifactScope artifacts(nullptr, "qe_band_loop");
  fx::core::TablePrinter t("band loop results");
  t.header({"mode", "wall [s]", "max error vs oracle", "note"});

  std::map<PipelineMode, std::vector<cplx>> outputs;
  for (const Run& run : runs) {
    const auto desc = std::make_shared<const fx::fftx::Descriptor>(
        fx::pw::Cell{10.0}, 16.0, nranks, run.ntg);
    std::vector<cplx> full(desc->sphere().size());
    double wall = 0.0;
    double err = 0.0;
    fx::mpi::Runtime::run(nranks, [&](fx::mpi::Comm& world) {
      fx::fftx::PipelineConfig cfg;
      cfg.num_bands = bands;
      cfg.mode = run.mode;
      cfg.nthreads = run.threads;
      fx::fftx::BandFftPipeline pipe(world, desc, cfg);
      pipe.initialize_bands();
      const double seconds = pipe.run();
      const auto index = desc->world_g_index(world.rank());
      const auto mine = pipe.band(bands - 1);
      for (std::size_t k = 0; k < index.size(); ++k) {
        full[index[k]] = mine[k];
      }
      if (world.rank() == 0) wall = seconds;
    });
    const auto want =
        fx::fftx::reference_band_output(*desc, bands - 1, true);
    for (std::size_t k = 0; k < full.size(); ++k) {
      err = std::max(err, std::abs(full[k] - want[k]));
    }
    outputs[run.mode] = full;
    t.row({to_string(run.mode), fx::core::fixed(wall, 4),
           fx::core::cat(err), run.note});
  }
  t.print(std::cout);

  bool identical = true;
  for (const auto& [mode, out] : outputs) {
    identical = identical && out == outputs.begin()->second;
  }
  std::cout << "\nall modes bitwise identical: "
            << (identical ? "yes" : "NO (bug!)") << '\n';
  std::cout << "note: wall times on this host are functional timings; the "
               "paper's KNL numbers come from the model benches.\n";
  return identical ? 0 : 1;
}
