// Co-design / tuning scenario: what the FFTXlib miniapp is for.
//
// "With this miniapp it is possible to analyze the impact of the
// parallelization parameters and their performance" (paper Sec. II.A).
// This example sweeps rank count x task-group count for a user-given
// workload on the KNL machine model and recommends a configuration --
// including whether the task-based version beats every task-group choice.
//
// Usage: tuning_sweep [ecut_ry] [alat_bohr] [bands]   (default 80 20 128)
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/format.hpp"
#include "core/table.hpp"
#include "fftx/descriptor.hpp"
#include "perfmodel/machine.hpp"
#include "perfmodel/program.hpp"
#include "perfmodel/simulator.hpp"
#include "trace/artifacts.hpp"

namespace {

double model_runtime(double ecut, double alat, int bands, int nranks, int ntg,
                     fx::fftx::PipelineMode mode, int threads) {
  const fx::fftx::Descriptor desc(fx::pw::Cell{alat}, ecut, nranks, ntg);
  fx::model::ProgramConfig pcfg;
  pcfg.mode = mode;
  pcfg.num_bands = bands;
  const auto bundle = fx::model::build_program(desc, pcfg);
  fx::model::SimConfig scfg;
  scfg.mode = mode;
  scfg.threads_per_rank = threads;
  return fx::model::simulate(bundle, fx::model::MachineConfig::knl(), scfg,
                             nullptr)
      .makespan;
}

}  // namespace

int main(int argc, char** argv) {
  fx::trace::ArtifactScope artifacts(nullptr, "tuning_sweep");
  const double ecut = argc > 1 ? std::atof(argv[1]) : 80.0;
  const double alat = argc > 2 ? std::atof(argv[2]) : 20.0;
  const int bands = argc > 3 ? std::atoi(argv[3]) : 128;

  const fx::fftx::Descriptor probe(fx::pw::Cell{alat}, ecut, 1, 1);
  std::cout << "workload: ecut " << ecut << " Ry, alat " << alat
            << " bohr, " << bands << " bands -> grid " << probe.dims().nx
            << "^3, " << probe.sphere().size() << " plane waves\n\n";

  fx::core::TablePrinter t("original version: ranks x task groups sweep "
                           "(KNL model runtime [s])");
  std::vector<int> ntgs{1, 2, 4, 8, 16};
  std::vector<std::string> head{"ranks \\ ntg"};
  for (int g : ntgs) head.push_back(fx::core::cat(g));
  t.header(head);

  double best = 1e30;
  std::string best_label;
  for (int p : {8, 16, 32, 64, 128}) {
    std::vector<std::string> row{fx::core::cat(p)};
    for (int g : ntgs) {
      if (p % g != 0 || bands % g != 0) {
        row.emplace_back("-");
        continue;
      }
      const double rt = model_runtime(ecut, alat, bands, p, g,
                                      fx::fftx::PipelineMode::Original, 1);
      row.push_back(fx::core::fixed(rt, 4));
      if (rt < best) {
        best = rt;
        best_label = fx::core::cat(p, " ranks, ntg ", g);
      }
    }
    t.row(row);
  }
  t.print(std::cout);

  // The task-based alternative at matching hardware-thread counts.
  std::cout << "\ntask-per-FFT version (ranks x 8 threads):\n";
  double best_task = 1e30;
  std::string best_task_label;
  for (int p : {1, 2, 4, 8, 16}) {
    const double rt = model_runtime(ecut, alat, bands, p, 1,
                                    fx::fftx::PipelineMode::TaskPerFft, 8);
    std::cout << "  " << p << " x 8: " << fx::core::fixed(rt, 4) << " s\n";
    if (rt < best_task) {
      best_task = rt;
      best_task_label = fx::core::cat(p, " ranks x 8 threads");
    }
  }

  std::cout << "\nbest original: " << best_label << " ("
            << fx::core::fixed(best, 4) << " s)\n"
            << "best task    : " << best_task_label << " ("
            << fx::core::fixed(best_task, 4) << " s)\n"
            << "recommendation: "
            << (best_task < best
                    ? "task-based version -- and no task-group tuning needed "
                      "(the runtime schedules dynamically)"
                    : "original version with the layout above")
            << '\n';
  return 0;
}
