// Multi-tenant service frontend demo: three tenants with different
// workloads and privileges submit a burst of requests -- mixed band
// counts, r2c and complex, some with wall-clock deadline budgets -- into a
// small bounded-queue frontend backed by `nranks` simulated ranks.
//
// Run it oversubscribed to watch admission control shed at the door and
// the degradation ladder trade fidelity for throughput:
//
//   ./service_demo [nranks] [requests-per-tenant]
//
// Environment: all FFTX_SERVE_* knobs (see README) plus the usual
// FFTX_FAULT_* plans -- inject a kill to watch the service shrink and keep
// serving.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/metrics.hpp"
#include "serve/frontend.hpp"
#include "simmpi/runtime.hpp"

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const int per_tenant = argc > 2 ? std::atoi(argv[2]) : 24;

  fx::serve::ServeConfig cfg = fx::serve::ServeConfig::from_env();
  if (std::getenv("FFTX_SERVE_QUEUE") == nullptr) cfg.queue_depth = 6;
  cfg.recovery.retry.base_delay_ms = 0.1;

  fx::serve::Frontend frontend(cfg);
  frontend.set_tenant_weight("premium", 2);  // twice the rotation share

  struct Submitted {
    std::string tenant;
    fx::serve::Ticket ticket;
  };
  std::vector<Submitted> admitted;
  int shed = 0;

  std::thread clients([&] {
    for (int i = 0; i < per_tenant; ++i) {
      for (const char* tenant : {"premium", "batch", "spot"}) {
        fx::serve::Request r;
        r.tenant = tenant;
        r.num_bands = 2 + i % 3;
        if (r.tenant == "batch") r.real_bands = true;     // gamma-point r2c
        if (r.tenant == "spot") r.deadline_s = 0.5;       // tight budget
        try {
          admitted.push_back({r.tenant, frontend.submit(r)});
        } catch (const fx::serve::Overloaded& e) {
          ++shed;
          if (shed == 1) {
            std::printf("first shed: %s (%s)\n", e.what(),
                        fx::serve::to_string(e.reason()));
          }
        }
      }
    }
    for (const auto& s : admitted) {
      while (!s.ticket.done()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    frontend.request_stop();
  });

  fx::mpi::RunOptions opts = fx::mpi::RunOptions::from_env();
  try {
    fx::mpi::Runtime::run(nranks, opts, [&](fx::mpi::Comm& world) {
      frontend.serve(world);
    });
  } catch (const fx::core::Error& e) {
    std::printf("world terminated: %s\n", e.what());
  }
  clients.join();
  frontend.fail_pending("service_demo: world terminated");

  int completed = 0, degraded = 0, cancelled = 0, failed = 0;
  for (auto& s : admitted) {
    const fx::serve::Response r = s.ticket.wait();
    switch (r.status) {
      case fx::serve::Status::Completed: ++completed; break;
      case fx::serve::Status::CompletedDegraded: ++degraded; break;
      case fx::serve::Status::DeadlineCancelled: ++cancelled; break;
      case fx::serve::Status::Failed: ++failed; break;
    }
  }

  std::printf("submitted %d | admitted %zu | shed %d\n",
              3 * per_tenant, admitted.size(), shed);
  std::printf("completed %d | degraded %d | deadline-cancelled %d | "
              "failed %d\n",
              completed, degraded, cancelled, failed);
  std::printf("groups dispatched: %zu\n", frontend.execution_log().size());

  // Each admitted request must land in exactly one terminal state.
  if (completed + degraded + cancelled + failed !=
      static_cast<int>(admitted.size())) {
    std::printf("TERMINAL-STATE MISMATCH\n");
    return 1;
  }
  if (completed + degraded == 0) {
    std::printf("NO PROGRESS\n");
    return 1;
  }
  std::printf("service demo OK\n");
  return 0;
}
